package cloudsim

import (
	"fmt"
	"math"
	"sort"

	"datacache/internal/model"
	"datacache/internal/online"
)

// Fault is an injected copy loss: whatever copy server holds at time At
// vanishes (machine crash, cache wipe). Faults may hit the last copy — the
// one case the paper's algorithms never face, because their invariant
// guarantees a live copy. Recovery then needs the external storage of
// Definition 2's row 0: the next request re-uploads the item at cost Beta
// (the paper's β, defined in Table II and otherwise unused).
type Fault struct {
	Server model.ServerID
	At     float64
}

// FaultReport is the outcome of a faulty run. Schedules under faults can
// have coverage gaps (no copy anywhere between a total loss and the next
// upload), so costs are accounted directly instead of through the
// feasibility validator.
type FaultReport struct {
	Policy    string
	Cost      float64 // caching + transfers + uploads
	Transfers int
	Uploads   int // β-uploads after total copy loss
	Lost      int // faults that actually destroyed a copy
}

// RunWithFaults replays a request sequence through an SC-family policy
// while injecting copy losses. The policy itself is the production SC rule
// set (window, refresh, expiry); the harness layers faults on top:
//
//   - a fault deletes the server's live copy immediately (policy timers for
//     it become stale);
//   - a request arriving when no copy exists anywhere triggers an upload
//     from external storage at cost beta, re-seeding the cluster at the
//     requesting server.
//
// The report's accounting identity — caching time·μ + transfers·λ +
// uploads·β — is checked by tests against an independent recomputation.
func RunWithFaults(seq *model.Sequence, cm model.CostModel, policy online.SpeculativeCaching,
	faults []Fault, beta float64) (*FaultReport, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	if beta < 0 || math.IsNaN(beta) || math.IsInf(beta, 0) {
		return nil, fmt.Errorf("cloudsim: upload cost β=%v must be finite and non-negative", beta)
	}
	window := policy.Window
	if window <= 0 {
		window = cm.Delta()
	}
	fs := append([]Fault(nil), faults...)
	sort.Slice(fs, func(a, b int) bool { return fs[a].At < fs[b].At })
	for _, f := range fs {
		if f.Server < 1 || int(f.Server) > seq.M {
			return nil, fmt.Errorf("cloudsim: fault on server %d out of range", f.Server)
		}
	}

	st := &faultState{
		m:       seq.M,
		window:  window,
		alive:   make([]bool, seq.M+1),
		since:   make([]float64, seq.M+1),
		expiry:  make([]float64, seq.M+1),
		created: make([]float64, seq.M+1),
	}
	st.alive[seq.Origin] = true
	st.expiry[seq.Origin] = window
	rep := &FaultReport{Policy: policy.Name()}

	fi := 0
	end := seq.End()
	for _, r := range seq.Requests {
		// Interleave faults and expiries up to the arrival.
		for fi < len(fs) && fs[fi].At < r.Time {
			st.expireUpTo(fs[fi].At, rep, cm)
			if st.alive[fs[fi].Server] {
				// The loss is abrupt: caching was paid up to the fault.
				rep.Cost += cm.Mu * (fs[fi].At - st.since[fs[fi].Server])
				st.alive[fs[fi].Server] = false
				rep.Lost++
			}
			fi++
		}
		st.expireUpTo(r.Time, rep, cm)
		sv := int(r.Server)
		switch {
		case st.alive[sv]:
			st.refresh(sv, r.Time)
		case st.anyAlive():
			src := st.freshest()
			rep.Cost += cm.Lambda
			rep.Transfers++
			st.alive[sv] = true
			st.since[sv] = r.Time
			st.created[sv] = r.Time
			st.refresh(sv, r.Time)
			st.refresh(src, r.Time)
		default:
			// Total loss: re-upload from external storage.
			rep.Cost += beta
			rep.Uploads++
			st.alive[sv] = true
			st.since[sv] = r.Time
			st.created[sv] = r.Time
			st.refresh(sv, r.Time)
		}
	}
	st.expireUpTo(end, rep, cm)
	for j := 1; j <= seq.M; j++ {
		if st.alive[j] {
			rep.Cost += cm.Mu * (end - st.since[j])
		}
	}
	return rep, nil
}

// faultState is a compact SC state machine with direct cost accounting
// (no schedule assembly: faulty runs may not be feasible schedules).
type faultState struct {
	m       int
	window  float64
	alive   []bool
	since   []float64 // caching charged from here
	expiry  []float64
	created []float64
}

func (st *faultState) refresh(j int, t float64) {
	st.expiry[j] = t + st.window
}

func (st *faultState) anyAlive() bool {
	for j := 1; j <= st.m; j++ {
		if st.alive[j] {
			return true
		}
	}
	return false
}

// freshest mirrors the production engine's transfer-source choice: latest
// deadline, ties to the younger copy.
func (st *faultState) freshest() int {
	best := 0
	at, created := math.Inf(-1), math.Inf(-1)
	for j := 1; j <= st.m; j++ {
		if !st.alive[j] {
			continue
		}
		if st.expiry[j] > at || (st.expiry[j] == at && st.created[j] > created) {
			best, at, created = j, st.expiry[j], st.created[j]
		}
	}
	return best
}

// expireUpTo applies SC expiry through time t with the same group rules as
// the production engine: all copies whose deadlines hit the same instant
// are handled together, the youngest surviving when the group would empty
// the cluster. After a fault-induced total loss there is no copy to extend,
// and the cluster simply stays empty until the next upload.
func (st *faultState) expireUpTo(t float64, rep *FaultReport, cm model.CostModel) {
	kill := func(j int, at float64) {
		rep.Cost += cm.Mu * (at - st.since[j])
		st.alive[j] = false
	}
	for {
		at := math.Inf(1)
		for k := 1; k <= st.m; k++ {
			if st.alive[k] && st.expiry[k] < at {
				at = st.expiry[k]
			}
		}
		if math.IsInf(at, 1) || at >= t {
			return
		}
		var group []int
		alive := 0
		for k := 1; k <= st.m; k++ {
			if !st.alive[k] {
				continue
			}
			alive++
			if st.expiry[k] == at {
				group = append(group, k)
			}
		}
		youngest := group[0]
		for _, j := range group {
			if st.created[j] > st.created[youngest] {
				youngest = j
			}
		}
		for _, j := range group {
			if j == youngest {
				continue
			}
			if alive > 1 {
				kill(j, at)
				alive--
			} else {
				st.refresh(j, at)
			}
		}
		if alive > 1 {
			kill(youngest, at)
		} else {
			// Last copy: extend past the horizon of interest in one jump.
			steps := math.Floor((t-at)/st.window) + 1
			st.expiry[youngest] = at + steps*st.window
		}
	}
}
