package cloudsim

import (
	"strings"
	"testing"

	"datacache/internal/model"
)

func tracedFixture() *model.Sequence {
	return &model.Sequence{M: 2, Origin: 1, Requests: []model.Request{
		{Server: 2, Time: 5},   // miss: transfer s1->s2
		{Server: 2, Time: 5.5}, // hit
		{Server: 1, Time: 10},  // s1 expired at 6: transfer s2->s1
	}}
}

func TestRunTracedRecordsStory(t *testing.T) {
	rep, rec, err := RunTraced(NewSCPolicy(0, 0), tracedFixture(), model.Unit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 2 {
		t.Fatalf("transfers = %d", rep.Transfers)
	}
	counts := map[TraceKind]int{}
	for _, ev := range rec.Events() {
		counts[ev.Kind]++
	}
	if counts[TraceRequest] != 3 {
		t.Errorf("requests traced = %d, want 3", counts[TraceRequest])
	}
	if counts[TraceTransfer] != 2 {
		t.Errorf("transfers traced = %d, want 2", counts[TraceTransfer])
	}
	if counts[TraceHit] != 1 {
		t.Errorf("hits traced = %d, want 1", counts[TraceHit])
	}
	if counts[TraceDrop] != 1 { // s1's copy expires at t=6
		t.Errorf("drops traced = %d, want 1", counts[TraceDrop])
	}
	// Time-ordered.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("trace out of order:\n%s", rec)
		}
	}
	out := rec.String()
	for _, want := range []string{"request", "hit", "transfer s1 -> s2", "drop"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderRingCap(t *testing.T) {
	_, rec, err := RunTraced(NewSCPolicy(0, 0), tracedFixture(), model.Unit, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) != 3 {
		t.Fatalf("retained = %d, want 3", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Error("ring should have dropped earlier events")
	}
	if !strings.Contains(rec.String(), "earlier events dropped") {
		t.Error("rendering does not mention dropped events")
	}
}

func TestTraceKindString(t *testing.T) {
	names := map[TraceKind]string{
		TraceRequest:  "request",
		TraceHit:      "hit",
		TraceTransfer: "transfer",
		TraceDrop:     "drop",
		TraceTimer:    "timer",
		TraceKind(99): "kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestTracedPolicyDoesNotChangeBehavior(t *testing.T) {
	seq := tracedFixture()
	plain, err := Run(NewSCPolicy(0, 0), seq, model.Unit)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := RunTraced(NewSCPolicy(0, 0), seq, model.Unit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != traced.Cost || plain.Transfers != traced.Transfers {
		t.Errorf("tracing changed behavior: %v/%d vs %v/%d",
			plain.Cost, plain.Transfers, traced.Cost, traced.Transfers)
	}
}
