// Package cloudsim is a discrete-event simulator of the paper's setting: a
// fully connected cluster of cache servers holding copies of one shared data
// item, serving a stream of timed requests under the homogeneous cost model.
// Policies plug in through a reactive interface — they observe request
// arrivals and their own timers, and act through the environment (transfer,
// drop, set timers). The simulator enforces the problem invariants (a copy
// can only be transferred from a live holder; the last copy cannot be
// dropped), accounts costs continuously, and records the resulting schedule
// so that results are directly comparable with the closed-form
// implementations in internal/online — the integration tests assert
// cost-for-cost equality for SC.
package cloudsim

import (
	"container/heap"
	"fmt"
	"math"

	"datacache/internal/model"
)

// Policy reacts to simulation events. Implementations must be deterministic
// functions of the observed history: the simulator replays events in strict
// time order, delivering requests before timers at equal instants — a
// speculative deadline that coincides with an arrival still serves the
// request, matching the expiry semantics of Section V.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Init is called once before the first event with the environment.
	Init(env *Env)
	// OnRequest must ensure the item is present on server (via env.Transfer
	// if needed); the simulator verifies presence afterwards.
	OnRequest(env *Env, server model.ServerID, now float64)
	// OnTimer delivers a timer the policy armed with env.SetTimer.
	OnTimer(env *Env, server model.ServerID, now float64)
}

// Env is the policy's handle on the simulated cluster.
type Env struct {
	sim *Simulator
}

// M returns the cluster size.
func (e *Env) M() int { return e.sim.seq.M }

// Model returns the cost model.
func (e *Env) Model() model.CostModel { return e.sim.cm }

// Now returns the current simulation time.
func (e *Env) Now() float64 { return e.sim.now }

// HasCopy reports whether server holds a live copy.
func (e *Env) HasCopy(server model.ServerID) bool { return e.sim.holds[server] }

// Copies returns the servers currently holding copies, in id order.
func (e *Env) Copies() []model.ServerID {
	var out []model.ServerID
	for j := model.ServerID(1); int(j) <= e.sim.seq.M; j++ {
		if e.sim.holds[j] {
			out = append(out, j)
		}
	}
	return out
}

// Transfer copies the item from a live holder to another server at cost λ.
func (e *Env) Transfer(from, to model.ServerID) error {
	s := e.sim
	if from == to {
		return fmt.Errorf("cloudsim: transfer to self on server %d", from)
	}
	if !s.holds[from] {
		return fmt.Errorf("cloudsim: transfer from server %d which holds no copy", from)
	}
	if s.holds[to] {
		return fmt.Errorf("cloudsim: transfer to server %d which already holds a copy", to)
	}
	s.holds[to] = true
	s.nHolds++
	s.createdAt[to] = s.now
	s.sched.AddTransfer(from, to, s.now)
	s.transfers++
	return nil
}

// Drop deletes a live copy. Dropping the last copy is rejected: the problem
// requires at least one live copy at all times.
func (e *Env) Drop(server model.ServerID) error {
	s := e.sim
	if !s.holds[server] {
		return fmt.Errorf("cloudsim: drop on server %d which holds no copy", server)
	}
	if s.nHolds == 1 {
		return fmt.Errorf("cloudsim: cannot drop the last copy (server %d)", server)
	}
	s.holds[server] = false
	s.nHolds--
	s.sched.AddCache(server, s.createdAt[server], s.now)
	return nil
}

// SetTimer arms a policy timer on a server. Timers at or before the current
// time fire immediately after the current event. Re-arming replaces nothing:
// every armed timer fires; policies must tolerate stale timers.
func (e *Env) SetTimer(server model.ServerID, at float64) {
	heap.Push(&e.sim.queue, event{at: at, kind: evTimer, server: server, seq: e.sim.nextSeq()})
}

// Fail aborts the simulation with a policy-level error.
func (e *Env) Fail(err error) { e.sim.failure = err }

// Simulator drives one run.
type Simulator struct {
	seq *model.Sequence
	cm  model.CostModel

	now       float64
	holds     []bool
	createdAt []float64
	nHolds    int
	transfers int
	queue     eventQueue
	seqCtr    int
	sched     model.Schedule
	failure   error
}

type evKind int8

const (
	evRequest evKind = iota // requests sort before timers at equal times
	evTimer
)

type event struct {
	at     float64
	kind   evKind
	server model.ServerID
	seq    int // FIFO tie-break for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

func (s *Simulator) nextSeq() int { s.seqCtr++; return s.seqCtr }

// Report is the outcome of a simulation run.
type Report struct {
	Policy    string
	Schedule  *model.Schedule
	Cost      float64
	Transfers int
	Events    int
}

// Run simulates the policy over the sequence and prices the resulting
// schedule; the schedule is validated for feasibility before returning.
func Run(p Policy, seq *model.Sequence, cm model.CostModel) (*Report, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		seq:       seq,
		cm:        cm,
		holds:     make([]bool, seq.M+1),
		createdAt: make([]float64, seq.M+1),
	}
	s.holds[seq.Origin] = true
	s.nHolds = 1
	env := &Env{sim: s}
	for i, r := range seq.Requests {
		heap.Push(&s.queue, event{at: r.Time, kind: evRequest, server: r.Server, seq: -len(seq.Requests) + i})
	}
	p.Init(env)
	events := 0
	end := seq.End()
	for s.queue.Len() > 0 && s.failure == nil {
		ev := heap.Pop(&s.queue).(event)
		if ev.at > end {
			break // timers beyond the horizon are irrelevant
		}
		if ev.at < s.now {
			return nil, fmt.Errorf("cloudsim: event at %v before current time %v", ev.at, s.now)
		}
		s.now = ev.at
		events++
		switch ev.kind {
		case evTimer:
			p.OnTimer(env, ev.server, s.now)
		case evRequest:
			p.OnRequest(env, ev.server, s.now)
			if s.failure == nil && !s.holds[ev.server] && !justDelivered(&s.sched, ev.server, s.now) {
				return nil, fmt.Errorf("cloudsim: %s left request at (s%d, t=%v) unserved", p.Name(), ev.server, s.now)
			}
		}
	}
	if s.failure != nil {
		return nil, fmt.Errorf("cloudsim: %s: %w", p.Name(), s.failure)
	}
	// Close out surviving copies at the horizon.
	for j := model.ServerID(1); int(j) <= seq.M; j++ {
		if s.holds[j] {
			s.sched.AddCache(j, s.createdAt[j], math.Max(s.createdAt[j], end))
		}
	}
	s.sched.Normalize()
	if err := s.sched.Validate(seq); err != nil {
		return nil, fmt.Errorf("cloudsim: %s produced an infeasible schedule: %w", p.Name(), err)
	}
	return &Report{
		Policy:    p.Name(),
		Schedule:  &s.sched,
		Cost:      s.sched.Cost(cm),
		Transfers: s.transfers,
		Events:    events,
	}, nil
}

// justDelivered reports whether a transfer landed on the server at this very
// instant (a policy may deliver and let its timer logic drop immediately).
func justDelivered(s *model.Schedule, server model.ServerID, now float64) bool {
	for i := len(s.Transfers) - 1; i >= 0; i-- {
		tr := s.Transfers[i]
		if tr.Time != now {
			return false
		}
		if tr.To == server {
			return true
		}
	}
	return false
}
