package cluster

import (
	"math"
	"math/rand"
	"testing"

	"datacache/internal/model"
	"datacache/internal/online"
	"datacache/internal/workload"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func TestClusterMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 80; trial++ {
		gens := workload.Standard(2+trial%5, 1.0)
		seq := gens[trial%len(gens)].Generate(rng, 1+rng.Intn(50))
		ref, err := online.Run(online.SpeculativeCaching{}, seq, model.Unit)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Run(seq, model.Unit, online.SpeculativeCaching{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Validate(seq); err != nil {
			t.Fatalf("trial %d: cluster schedule infeasible: %v", trial, err)
		}
		if got, want := sched.Cost(model.Unit), ref.Stats.Cost; !approxEq(got, want) {
			t.Fatalf("trial %d: cluster cost %v != closed form %v\ncluster=%s\nref=%s",
				trial, got, want, sched, ref.Schedule)
		}
	}
}

func TestClusterExecutesOtherPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	seq := workload.MarkovHop{M: 4, Stay: 0.7, MeanGap: 0.6}.Generate(rng, 60)
	for _, p := range []online.Runner{
		online.AdaptiveTTL{},
		online.AlwaysMigrate{},
		online.KeepEverywhere{},
		online.RandomizedSC{Seed: 3},
	} {
		ref, err := online.Run(p, seq, model.Unit)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Run(seq, model.Unit, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !approxEq(sched.Cost(model.Unit), ref.Stats.Cost) {
			t.Fatalf("%s: cluster %v != closed form %v", p.Name(), sched.Cost(model.Unit), ref.Stats.Cost)
		}
	}
}

func TestClusterWithEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	seq := workload.MarkovHop{M: 4, Stay: 0.6, MeanGap: 0.8}.Generate(rng, 40)
	for _, epoch := range []int{1, 5} {
		p := online.SpeculativeCaching{EpochTransfers: epoch}
		ref, err := online.Run(p, seq, model.Unit)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Run(seq, model.Unit, p)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(sched.Cost(model.Unit), ref.Stats.Cost) {
			t.Fatalf("epoch %d: %v != %v", epoch, sched.Cost(model.Unit), ref.Stats.Cost)
		}
	}
}

func TestClusterPrimitives(t *testing.T) {
	seq := &model.Sequence{M: 3, Origin: 1, Requests: []model.Request{{Server: 2, Time: 1}}}
	c, err := New(seq, model.Unit)
	if err != nil {
		t.Fatal(err)
	}
	defer c.shutdown()

	if !c.Serve(1, 0.5) {
		t.Error("origin cannot serve despite seeded copy")
	}
	if c.Serve(2, 0.5) {
		t.Error("empty server served a request")
	}
	if err := c.Transfer(1, 1, 0.5); err == nil {
		t.Error("self transfer accepted")
	}
	if err := c.Transfer(2, 3, 0.5); err == nil {
		t.Error("transfer from empty source accepted")
	}
	if err := c.Transfer(1, 2, 0.5); err != nil {
		t.Errorf("legal transfer failed: %v", err)
	}
	if err := c.Transfer(1, 2, 0.6); err == nil {
		t.Error("transfer onto a holding server accepted")
	}
	if err := c.Release(3, 0.7); err == nil {
		t.Error("release of empty server accepted")
	}
	if err := c.Release(2, 0.7); err != nil {
		t.Errorf("legal release failed: %v", err)
	}
	// The released interval [0.5, 0.7] must have been recorded.
	found := false
	for _, h := range c.sched.Caches {
		if h.Server == 2 && h.From == 0.5 && h.To == 0.7 {
			found = true
		}
	}
	if !found {
		t.Errorf("release did not record the held interval: %v", c.sched.Caches)
	}
}

func TestClusterRejectsInvalid(t *testing.T) {
	if _, err := New(&model.Sequence{M: 0}, model.Unit); err == nil {
		t.Error("invalid sequence accepted")
	}
	seq := &model.Sequence{M: 2, Origin: 1}
	if _, err := New(seq, model.CostModel{}); err == nil {
		t.Error("invalid cost model accepted")
	}
	if _, err := Run(&model.Sequence{M: 0}, model.Unit, online.SpeculativeCaching{}); err == nil {
		t.Error("Run accepted invalid sequence")
	}
}

func TestClusterEmptySequence(t *testing.T) {
	seq := &model.Sequence{M: 2, Origin: 1}
	sched, err := Run(seq, model.Unit, online.SpeculativeCaching{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Cost(model.Unit) != 0 {
		t.Errorf("empty cost = %v", sched.Cost(model.Unit))
	}
}
