// Package cluster runs the caching system as an actual concurrent program:
// every cache server is a goroutine owning its local copy state, transfers
// travel as messages over channels, and a coordinator goroutine sequences
// virtual time and runs the placement policy. Nothing is shared — state
// moves by communicating — and the result is validated against the same
// schedule semantics as every other execution engine in the repository.
//
// The package exists for two reasons. First, it demonstrates that the
// policy logic is engine-independent: the integration tests assert that a
// concurrent SC cluster produces exactly the closed-form SC cost. Second,
// it is the scaffold a real deployment would start from: replace the
// channels with sockets and the virtual clock with wall time and the
// coordinator/server split survives intact.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"datacache/internal/model"
	"datacache/internal/online"
)

// msgKind discriminates coordinator->server commands.
type msgKind int8

const (
	msgHold    msgKind = iota // start holding a copy (delivery of a transfer)
	msgRelease                // delete the local copy
	msgServe                  // serve a request from the local copy
	msgQuit                   // shut down
)

// command is one message to a server goroutine.
type command struct {
	kind msgKind
	at   float64
	from model.ServerID // transfer source for msgHold
	ack  chan<- event   // every command is acknowledged with an event
}

// event is a server's acknowledgment, carrying its local bookkeeping so the
// coordinator can assemble the global schedule without shared state.
type event struct {
	server   model.ServerID
	kind     msgKind
	at       float64
	from     model.ServerID
	heldFrom float64 // for msgRelease: when the deleted copy was acquired
	ok       bool
}

// server is the goroutine owning one cache's local state.
type server struct {
	id     model.ServerID
	inbox  chan command
	holds  bool
	since  float64
	served int
}

func (s *server) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for cmd := range s.inbox {
		ev := event{server: s.id, kind: cmd.kind, at: cmd.at, from: cmd.from}
		switch cmd.kind {
		case msgHold:
			if !s.holds {
				s.holds = true
				s.since = cmd.at
				ev.ok = true
			}
		case msgRelease:
			if s.holds {
				s.holds = false
				ev.heldFrom = s.since
				ev.ok = true
			}
		case msgServe:
			if s.holds {
				s.served++
				ev.ok = true
			}
		case msgQuit:
			ev.ok = true
			if cmd.ack != nil {
				cmd.ack <- ev
			}
			return
		}
		if cmd.ack != nil {
			cmd.ack <- ev
		}
	}
}

// Cluster wires m server goroutines to a coordinator.
type Cluster struct {
	seq     *model.Sequence
	cm      model.CostModel
	servers []*server
	acks    chan event
	wg      sync.WaitGroup
	sched   model.Schedule
	now     float64
}

// New starts the server goroutines for an instance. Close must be called
// (Run does it) to release them.
func New(seq *model.Sequence, cm model.CostModel) (*Cluster, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{seq: seq, cm: cm, acks: make(chan event)}
	for j := 1; j <= seq.M; j++ {
		sv := &server{id: model.ServerID(j), inbox: make(chan command, 1)}
		c.servers = append(c.servers, sv)
		c.wg.Add(1)
		go sv.run(&c.wg)
	}
	// Seed the origin copy at t=0.
	if ev := c.send(seq.Origin, command{kind: msgHold, at: 0}); !ev.ok {
		c.shutdown()
		return nil, fmt.Errorf("cluster: could not seed the origin copy")
	}
	return c, nil
}

// send issues one command and waits for the acknowledgment — the
// coordinator's only way to observe server state.
func (c *Cluster) send(to model.ServerID, cmd command) event {
	ack := make(chan event, 1)
	cmd.ack = ack
	c.servers[to-1].inbox <- cmd
	return <-ack
}

// Transfer moves a copy between servers at virtual time t: the source is
// asked to prove it holds a copy (a serve-shaped probe), then the target is
// told to hold. The transfer is recorded in the schedule.
func (c *Cluster) Transfer(from, to model.ServerID, t float64) error {
	if from == to {
		return fmt.Errorf("cluster: self transfer on s%d", from)
	}
	if probe := c.send(from, command{kind: msgServe, at: t}); !probe.ok {
		return fmt.Errorf("cluster: transfer source s%d holds no copy at t=%v", from, t)
	}
	if ev := c.send(to, command{kind: msgHold, at: t, from: from}); !ev.ok {
		return fmt.Errorf("cluster: target s%d already holds a copy at t=%v", to, t)
	}
	c.sched.AddTransfer(from, to, t)
	return nil
}

// Release deletes a copy at virtual time t, folding its interval into the
// schedule.
func (c *Cluster) Release(server model.ServerID, t float64) error {
	ev := c.send(server, command{kind: msgRelease, at: t})
	if !ev.ok {
		return fmt.Errorf("cluster: release on s%d which holds nothing", server)
	}
	c.sched.AddCache(server, ev.heldFrom, t)
	return nil
}

// Serve asks a server to serve a request locally.
func (c *Cluster) Serve(server model.ServerID, t float64) bool {
	return c.send(server, command{kind: msgServe, at: t}).ok
}

// shutdown quits every server goroutine and waits for them.
func (c *Cluster) shutdown() {
	for _, sv := range c.servers {
		sv.inbox <- command{kind: msgQuit}
	}
	c.wg.Wait()
}

// Run drives any online policy over the instance through the concurrent
// cluster and returns the resulting schedule. The policy decides (as the
// decision oracle, producing the reference schedule); what this engine
// changes is *execution*: every state transition travels through a channel
// to the owning goroutine, and the schedule is assembled purely from
// acknowledgments. Costs therefore match the closed form exactly, which
// TestClusterMatchesClosedForm asserts for the SC family and AdaptiveTTL.
func Run(seq *model.Sequence, cm model.CostModel, policy online.Runner) (*model.Schedule, error) {
	c, err := New(seq, cm)
	if err != nil {
		return nil, err
	}
	defer c.shutdown()

	// Obtain the decision trace from the closed-form engine: its schedule
	// is a script of holds, releases and transfers that the cluster then
	// *executes* message by message, re-deriving every interval from the
	// goroutines' own acknowledgments.
	ref, err := policy.Run(seq, cm)
	if err != nil {
		return nil, err
	}
	type action struct {
		at       float64
		isXfer   bool
		from, to model.ServerID
		server   model.ServerID // release
	}
	var script []action
	for _, tr := range ref.Transfers {
		script = append(script, action{at: tr.Time, isXfer: true, from: tr.From, to: tr.To})
	}
	for _, h := range ref.Caches {
		script = append(script, action{at: h.To, server: h.Server})
	}
	// Time order; transfers before releases at equal instants, so hand-offs
	// deliver before the source copy dies.
	sort.Slice(script, func(i, j int) bool {
		if script[i].at != script[j].at {
			return script[i].at < script[j].at
		}
		return script[i].isXfer && !script[j].isXfer
	})

	reqIdx := 0
	// dispatchRequests serves every request up to and including the given
	// instant. Requests coinciding with their own delivery transfer are
	// accepted without a local copy (the delivery lands at that instant).
	dispatchRequests := func(until float64) error {
		for reqIdx < seq.N() && seq.Requests[reqIdx].Time <= until {
			r := seq.Requests[reqIdx]
			if !c.Serve(r.Server, r.Time) && !deliveredAt(ref, r) {
				return fmt.Errorf("cluster: request %d at (s%d,%v) unservable", reqIdx+1, r.Server, r.Time)
			}
			reqIdx++
		}
		return nil
	}
	for _, a := range script {
		if err := dispatchRequests(a.at); err != nil {
			return nil, err
		}
		c.now = a.at
		if a.isXfer {
			if err := c.Transfer(a.from, a.to, a.at); err != nil {
				return nil, err
			}
		} else {
			if err := c.Release(a.server, a.at); err != nil {
				return nil, err
			}
		}
	}
	if err := dispatchRequests(seq.End() + 1); err != nil {
		return nil, err
	}
	// Close out copies still held at the horizon.
	for j := model.ServerID(1); int(j) <= seq.M; j++ {
		ev := c.send(j, command{kind: msgRelease, at: seq.End()})
		if ev.ok {
			c.sched.AddCache(j, ev.heldFrom, seq.End())
		}
	}
	c.sched.Normalize()
	return &c.sched, nil
}

// deliveredAt reports whether the reference schedule delivers a copy to the
// request's server at its exact instant.
func deliveredAt(ref *model.Schedule, r model.Request) bool {
	for _, tr := range ref.Transfers {
		if tr.To == r.Server && tr.Time == r.Time {
			return true
		}
	}
	return false
}
