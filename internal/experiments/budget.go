package experiments

import (
	"fmt"
	"math/rand"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/stats"
	"datacache/internal/workload"
)

// Budget is experiment E13: what is each allowed copy worth? Table I's
// "Cache Size" row contrasts the classic fixed number k with the cloud's
// dynamic number of copies; this sweep makes the contrast quantitative by
// re-imposing a global copy budget K on both the off-line optimum
// (offline.CapOptimal) and the online policy (SC with MaxCopies) and
// watching the cost fall to the unrestricted level as K grows.
func Budget(seed int64, n int) (*Report, error) {
	cm := model.Unit
	caps := []int{1, 2, 3, 4, 0} // 0 = unbounded
	header := []string{"workload", "OPT(∞)"}
	for _, k := range caps {
		if k == 0 {
			header = append(header, "OPT(∞)/OPT(∞)", "SC(∞)/OPT(∞)")
			break
		}
		header = append(header, fmt.Sprintf("OPT(K=%d)/OPT(∞)", k), fmt.Sprintf("SC(K=%d)/OPT(∞)", k))
	}
	rep := &Report{
		ID:    "E13/Budget",
		Title: "Copy-budget sweep: re-imposing the classic capacity limit",
		Table: &stats.Table{Header: header},
	}
	rng := rand.New(rand.NewSource(seed))
	gens := []workload.Generator{
		workload.Uniform{M: 8, MeanGap: 0.3},
		workload.Zipf{M: 8, S: 1.5, MeanGap: 0.3},
		workload.MarkovHop{M: 8, Stay: 0.7, MeanGap: 0.3},
	}
	for _, g := range gens {
		seq := g.Generate(rng, n)
		unrestricted, err := offline.FastDP(seq, cm)
		if err != nil {
			return nil, err
		}
		row := []interface{}{g.Name(), unrestricted.Cost()}
		for _, k := range caps {
			opt, err := offline.CapOptimal(seq, cm, k)
			if err != nil {
				return nil, err
			}
			sc, err := online.Run(online.SpeculativeCaching{MaxCopies: k}, seq, cm)
			if err != nil {
				return nil, err
			}
			row = append(row, opt/unrestricted.Cost(), sc.Stats.Cost/unrestricted.Cost())
			if k == 0 {
				break
			}
		}
		rep.Table.Add(row...)
	}
	rep.notef("the dynamic-copies advantage saturates after a few copies; K=1 is the migration-only world")
	return rep, nil
}
