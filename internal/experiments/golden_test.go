package experiments

import (
	"strings"
	"testing"
)

// TestFig6ReportGoldenText pins the exact rendered table of the flagship
// report: the numbers are the paper's, and the format is part of the
// repository's contract with EXPERIMENTS.md.
func TestFig6ReportGoldenText(t *testing.T) {
	rep, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	got := trimTrailing(rep.Table.String())
	want := `i  server  t_i  b_i  B_i  C(i)  D(i)  paper C  paper D
-  ------  ---  ---  ---  ----  ----  -------  -------
1  s2      0.5    1    1   1.5  +Inf      1.5  +Inf
2  s3      0.8    1    2   2.8  +Inf      2.8  +Inf
3  s4      1.1    1    3   4.1  +Inf      4.1  +Inf
4  s1      1.4    1    4   4.4   4.4      4.4      4.4
5  s2      2.6    1    5   6.5   6.5      6.5      6.5
6  s2      3.2  0.6  5.6   7.1   7.1      7.1      7.1
7  s3        4    1  6.6   8.9   9.2      8.9      9.2
`
	if got != want {
		t.Errorf("Fig6 table drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
	if len(rep.Notes) < 2 || !strings.Contains(rep.Notes[1], "space-time diagram") {
		t.Errorf("missing diagram note: %v", rep.Notes)
	}
}

// trimTrailing removes per-line trailing padding, which is layout not
// content.
func trimTrailing(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " ")
	}
	return strings.Join(lines, "\n")
}

// TestFig2ReportGoldenText pins the Fig. 2 comparison table.
func TestFig2ReportGoldenText(t *testing.T) {
	rep, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Table.String()
	want := `quantity       paper  measured
-------------  -----  --------
caching cost     3.2       3.2
transfer cost      4         4
total cost       7.2       7.2
`
	if got != want {
		t.Errorf("Fig2 table drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
