package experiments

import (
	"math"
	"math/rand"

	"datacache/internal/hetero"
	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/stats"
	"datacache/internal/trajectory"
)

// Predict runs experiment E8: trajectory-mined (predicted) sequences fed to
// the off-line optimizer, replayed against the true future, and compared
// with pure-online SC and the clairvoyant optimum across mobility models of
// varying predictability.
func Predict(seed int64, n int) (*Report, error) {
	cm := model.Unit
	rep := &Report{
		ID:    "E8/Predict",
		Title: "Off-line planning on mined trajectories vs. pure-online SC",
		Table: &stats.Table{Header: []string{"mobility", "accuracy", "plan total", "SC", "OPT", "plan/OPT", "SC/OPT"}},
	}
	field := trajectory.GridField(9, 1.0)
	scenarios := []struct {
		name string
		gen  func(*rand.Rand, int) *model.Sequence
	}{
		{"markov stay=0.95", func(rng *rand.Rand, k int) *model.Sequence {
			return trajectory.MarkovCells{Field: field, Stay: 0.95, Neighbors: 3, ReqGap: 0.9}.Generate(rng, k)
		}},
		{"markov stay=0.6", func(rng *rand.Rand, k int) *model.Sequence {
			return trajectory.MarkovCells{Field: field, Stay: 0.6, Neighbors: 3, ReqGap: 0.9}.Generate(rng, k)
		}},
		{"waypoint slow", func(rng *rand.Rand, k int) *model.Sequence {
			return trajectory.RandomWaypoint{Field: field, Speed: 0.1, Pause: 1, ReqGap: 0.9}.Generate(rng, k)
		}},
		{"waypoint fast", func(rng *rand.Rand, k int) *model.Sequence {
			return trajectory.RandomWaypoint{Field: field, Speed: 1.5, Pause: 0.1, ReqGap: 0.9}.Generate(rng, k)
		}},
		{"deterministic tour", func(rng *rand.Rand, k int) *model.Sequence {
			seq := &model.Sequence{M: 9, Origin: 1}
			t := 0.0
			for i := 0; i < k; i++ {
				t += 0.9 * (0.95 + 0.1*rng.Float64())
				seq.Requests = append(seq.Requests, model.Request{
					Server: model.ServerID(1 + i%4), Time: t,
				})
			}
			return seq
		}},
	}
	for _, sc := range scenarios {
		rng := rand.New(rand.NewSource(seed))
		train := sc.gen(rng, 10*n)
		test := sc.gen(rng, n)
		pred := trajectory.NewPredictor(2)
		pred.Train(trajectory.Servers(train))
		exec, err := trajectory.PlanAndExecute(pred, test, cm)
		if err != nil {
			return nil, err
		}
		opt, err := offline.FastDP(test, cm)
		if err != nil {
			return nil, err
		}
		scRun, err := online.Run(online.SpeculativeCaching{}, test, cm)
		if err != nil {
			return nil, err
		}
		rep.Table.Add(sc.name, exec.Accuracy, exec.TotalCost, scRun.Stats.Cost, opt.Cost(),
			exec.TotalCost/opt.Cost(), scRun.Stats.Cost/opt.Cost())
	}
	rep.notef("plan/OPT approaches 1 as predictability rises; SC/OPT is insensitive to it")
	return rep, nil
}

// Hetero runs experiment E9: how quickly the homogeneous optimum degrades
// as per-server and per-pair costs skew away from uniform. The gap is the
// relative regret of pricing the homogeneous-optimal schedule under the
// true heterogeneous model versus the heterogeneous exact optimum.
func Hetero(seed int64) (*Report, error) {
	cm := model.Unit
	rep := &Report{
		ID:    "E9/Hetero",
		Title: "Regret of assuming homogeneity as cost skew grows",
		Table: &stats.Table{Header: []string{"skew ±", "hetero OPT", "homog schedule priced", "relative gap", "hetero-SC online", "online/OPT"}},
	}
	rng := rand.New(rand.NewSource(seed))
	seq := &model.Sequence{M: 6, Origin: 1}
	tm := 0.0
	for i := 0; i < 60; i++ {
		tm += 0.2 + rng.Float64()
		seq.Requests = append(seq.Requests, model.Request{
			Server: model.ServerID(1 + rng.Intn(6)), Time: tm,
		})
	}
	res, err := offline.FastDP(seq, cm)
	if err != nil {
		return nil, err
	}
	sched, err := res.Schedule()
	if err != nil {
		return nil, err
	}
	for _, eps := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8} {
		h := hetero.NewUniform(seq.M, cm)
		pr := rand.New(rand.NewSource(seed + 1))
		h.Perturb(eps, pr.Float64)
		opt, err := hetero.Optimal(seq, h)
		if err != nil {
			return nil, err
		}
		priced := hetero.PriceSchedule(sched, h)
		gap := 0.0
		if opt > 0 {
			gap = (priced - opt) / opt
		}
		if math.Abs(gap) < 1e-12 {
			gap = 0 // numeric noise at (or near) zero skew
		}
		_, onlineCost, err := hetero.SC{Model: h}.Run(seq)
		if err != nil {
			return nil, err
		}
		rep.Table.Add(eps, opt, priced, gap, onlineCost, onlineCost/opt)
	}
	rep.notef("at skew 0 the gap is exactly 0 (FastDP is provably optimal under homogeneity)")
	return rep, nil
}

// All runs every experiment with modest sizes, in index order.
func All(seed int64) ([]*Report, error) {
	quickComplexity := ComplexityConfig{
		Ns:      []int{500, 1000, 2000, 4000},
		M:       16,
		MSweep:  []int{4, 16, 64},
		NFixed:  2000,
		Repeats: 2,
	}
	runs := []func() (*Report, error){
		func() (*Report, error) { return Table1(seed) },
		Fig2,
		Fig6,
		func() (*Report, error) { return Fig7(seed) },
		func() (*Report, error) { return Complexity(quickComplexity, seed) },
		func() (*Report, error) { return Ratio(seed, 800) },
		func() (*Report, error) { return Policies(seed, 800) },
		func() (*Report, error) { return Predict(seed, 300) },
		func() (*Report, error) { return Hetero(seed) },
		func() (*Report, error) { return Replication(seed, 800) },
		func() (*Report, error) { return Window(seed, 800) },
		func() (*Report, error) { return Epoch(seed, 800) },
		func() (*Report, error) { return Budget(seed, 300) },
		func() (*Report, error) { return Faults(seed, 800) },
	}
	var out []*Report
	for _, run := range runs {
		rep, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
