package experiments

import (
	"strings"
	"testing"
)

func TestTable1ReproducesParadigmContrast(t *testing.T) {
	rep, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rep.Table.Rows))
	}
	out := rep.String()
	if !strings.Contains(out, "Belady") || !strings.Contains(out, "FastDP") {
		t.Errorf("missing algorithms in:\n%s", out)
	}
}

func TestFig2Report(t *testing.T) {
	rep, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"3.2", "7.2", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Paper and measured columns must agree on every row.
	for _, row := range rep.Table.Rows {
		if row[1] != row[2] {
			t.Errorf("row %v: paper %q != measured %q", row[0], row[1], row[2])
		}
	}
}

func TestFig6Report(t *testing.T) {
	rep, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rep.Table.Rows))
	}
	// Measured C(i) (column 5) must equal the paper's C (column 7).
	for _, row := range rep.Table.Rows {
		if row[5] != row[7] {
			t.Errorf("request %s: measured C %q != paper C %q", row[0], row[5], row[7])
		}
		if row[6] != row[8] {
			t.Errorf("request %s: measured D %q != paper D %q", row[0], row[6], row[8])
		}
	}
}

func TestFig7AllChecksHold(t *testing.T) {
	rep, err := Fig7(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Table.Rows {
		if row[4] != "true" {
			t.Errorf("check %q does not hold: %v", row[0], row)
		}
	}
}

func TestComplexitySmall(t *testing.T) {
	cfg := ComplexityConfig{Ns: []int{200, 400, 800}, M: 8, MSweep: []int{4, 8}, NFixed: 400, Repeats: 1}
	rep, err := Complexity(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != len(cfg.Ns)+len(cfg.MSweep) {
		t.Fatalf("rows = %d", len(rep.Table.Rows))
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "n^") {
		t.Errorf("missing growth note: %v", rep.Notes)
	}
}

func TestRatioSweepUnderBound(t *testing.T) {
	rep, err := Ratio(1, 150)
	if err != nil {
		t.Fatal(err) // Ratio fails internally if any ratio exceeds 3
	}
	if len(rep.Table.Rows) != 5*7 {
		t.Fatalf("rows = %d, want 35 (5 cost models x 7 workloads)", len(rep.Table.Rows))
	}
}

func TestPoliciesReport(t *testing.T) {
	rep, err := Policies(1, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 workloads", len(rep.Table.Rows))
	}
	if got := len(rep.Table.Header); got != 7 {
		t.Fatalf("columns = %d, want 7", got)
	}
}

func TestPredictReport(t *testing.T) {
	rep, err := Predict(1, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 mobility scenarios", len(rep.Table.Rows))
	}
}

func TestHeteroReport(t *testing.T) {
	rep, err := Hetero(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 skew levels", len(rep.Table.Rows))
	}
	// Zero skew: the gap column must be exactly 0.
	if rep.Table.Rows[0][3] != "0" {
		t.Errorf("zero-skew gap = %q, want 0", rep.Table.Rows[0][3])
	}
}

func TestReplicationAblation(t *testing.T) {
	rep, err := Replication(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Table.Rows))
	}
}

func TestWindowAblation(t *testing.T) {
	rep, err := Window(1, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 7 {
		t.Fatalf("rows = %d", len(rep.Table.Rows))
	}
	if got := len(rep.Table.Header); got != 8 {
		t.Fatalf("columns = %d, want 8", got)
	}
}

func TestEpochAblation(t *testing.T) {
	rep, err := Epoch(1, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 7 {
		t.Fatalf("rows = %d", len(rep.Table.Rows))
	}
}

func TestFaultsExperiment(t *testing.T) {
	rep, err := Faults(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Table.Rows))
	}
	// Rate 0 row: no faults, no uploads, and both β columns equal baseline.
	zero := rep.Table.Rows[0]
	if zero[1] != "0" || zero[2] != "0" || zero[3] != "0" {
		t.Errorf("zero-rate row = %v", zero)
	}
	if zero[4] != zero[7] || zero[6] != zero[7] {
		t.Errorf("zero-rate costs should equal baseline: %v", zero)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	reps, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 14 {
		t.Fatalf("experiments = %d, want 14", len(reps))
	}
	ids := map[string]bool{}
	for _, r := range reps {
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		ids[r.ID] = true
	}
	for _, want := range []string{"E1/TableI", "E5/Complexity", "E9/Hetero"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}
