// Package experiments regenerates every table and figure of the paper's
// evaluation story (see DESIGN.md §3 for the experiment index E1–E14). Each
// experiment returns a Report whose table holds the measured rows; the
// cmd/dcbench tool prints them and EXPERIMENTS.md records paper-vs-measured
// for each.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/paging"
	"datacache/internal/stats"
	"datacache/internal/workload"
)

// Report is one regenerated artifact.
type Report struct {
	ID    string
	Title string
	Table *stats.Table
	Notes []string
}

// String renders the report for terminal output.
func (r *Report) String() string {
	out := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

func (r *Report) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table1 measures both columns of the paper's Table I on matched workloads:
// the classic capacity-oriented problem (Belady's algorithm vs k-competitive
// LRU, counting faults on a fixed cache) and the cloud data caching problem
// (the O(mn) optimum vs the 3-competitive SC, counting monetary cost with a
// dynamic number of copies).
func Table1(seed int64) (*Report, error) {
	rep := &Report{
		ID:    "E1/TableI",
		Title: "Classic network caching vs. cloud data caching, measured",
		Table: &stats.Table{Header: []string{"paradigm", "offline alg", "offline result", "online alg", "online result", "ratio", "bound"}},
	}
	rng := rand.New(rand.NewSource(seed))

	// Classic column: a Zipf page stream on a k-page cache.
	const k, refsN = 8, 4000
	zf := rand.NewZipf(rng, 1.4, 1, 63)
	refs := make([]paging.Page, refsN)
	for i := range refs {
		refs[i] = paging.Page(zf.Uint64())
	}
	belady, err := paging.Belady(refs, k)
	if err != nil {
		return nil, err
	}
	lru, err := paging.LRU(refs, k)
	if err != nil {
		return nil, err
	}
	rep.Table.Add("classic (zipf refs)", "Belady MIN", fmt.Sprintf("%d faults", belady),
		fmt.Sprintf("LRU k=%d", k), fmt.Sprintf("%d faults", lru),
		float64(lru)/float64(belady), fmt.Sprintf("k=%d", k))

	// Classic column, adversarial: the cyclic nemesis shows the Θ(k) gap.
	adv := paging.CyclicAdversary(k, refsN)
	beladyAdv, err := paging.Belady(adv, k)
	if err != nil {
		return nil, err
	}
	lruAdv, err := paging.LRU(adv, k)
	if err != nil {
		return nil, err
	}
	rep.Table.Add("classic (adversarial)", "Belady MIN", fmt.Sprintf("%d faults", beladyAdv),
		fmt.Sprintf("LRU k=%d", k), fmt.Sprintf("%d faults", lruAdv),
		float64(lruAdv)/float64(beladyAdv), fmt.Sprintf("k=%d", k))

	// Cloud column: cost-driven caching of one item over m servers.
	cm := model.Unit
	seq := workload.Zipf{M: 16, S: 1.4, MeanGap: cm.Delta()}.Generate(rng, refsN)
	pt, err := online.CompetitiveRatio(online.SpeculativeCaching{}, seq, cm)
	if err != nil {
		return nil, err
	}
	rep.Table.Add("cloud (zipf requests)", "O(mn) FastDP", fmt.Sprintf("cost %.1f", pt.Opt),
		"SC", fmt.Sprintf("cost %.1f", pt.Cost), pt.Ratio, "3")

	advSeq := workload.Adversarial{M: 16, Window: cm.Delta()}.Generate(rng, refsN)
	ptAdv, err := online.CompetitiveRatio(online.SpeculativeCaching{}, advSeq, cm)
	if err != nil {
		return nil, err
	}
	rep.Table.Add("cloud (adversarial)", "O(mn) FastDP", fmt.Sprintf("cost %.1f", ptAdv.Opt),
		"SC", fmt.Sprintf("cost %.1f", ptAdv.Cost), ptAdv.Ratio, "3")

	rep.notef("classic online ratio grows with k; cloud online ratio stays under the constant 3")
	return rep, nil
}

// Fig2 regenerates the standard-form optimal schedule of Fig. 2: caching
// cost 3.2μ, transfer cost 4λ, total 7.2.
func Fig2() (*Report, error) {
	seq, cm := offline.Fig2Instance()
	res, err := offline.FastDP(seq, cm)
	if err != nil {
		return nil, err
	}
	sched, err := res.Schedule()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "E2/Fig2",
		Title: "Standard-form optimal schedule (caption: 3.2μ + 4λ = 7.2)",
		Table: &stats.Table{Header: []string{"quantity", "paper", "measured"}},
	}
	rep.Table.Add("caching cost", offline.Fig2CachingCost, sched.CachingCost(cm))
	rep.Table.Add("transfer cost", offline.Fig2TransferCost, sched.TransferCost(cm))
	rep.Table.Add("total cost", offline.Fig2Cost, res.Cost())
	rep.notef("schedule: %s", sched)
	rep.notef("space-time diagram (cf. the paper's Fig. 2):\n%s%s",
		model.RenderSpaceTime(seq, sched, 72), model.RenderLegend())
	return rep, nil
}

// Fig6 regenerates the DP trace table printed under Fig. 6: the b, B, C and
// D vectors of the running example, matched entry by entry against the
// paper's printed values.
func Fig6() (*Report, error) {
	seq, cm := offline.Fig6Instance()
	res, err := offline.FastDP(seq, cm)
	if err != nil {
		return nil, err
	}
	b := model.MarginalBounds(seq, cm)
	rep := &Report{
		ID:    "E3/Fig6",
		Title: "DP trace of the Section IV running example",
		Table: &stats.Table{Header: []string{"i", "server", "t_i", "b_i", "B_i", "C(i)", "D(i)", "paper C", "paper D"}},
	}
	for i := 1; i <= seq.N(); i++ {
		d := "+Inf"
		if !math.IsInf(res.D[i], 1) {
			d = fmt.Sprintf("%.4g", res.D[i])
		}
		paperD := "+Inf"
		if offline.Fig6D[i] != offline.Fig6Inf {
			paperD = fmt.Sprintf("%.4g", offline.Fig6D[i])
		}
		rep.Table.Add(i, fmt.Sprintf("s%d", seq.Requests[i-1].Server), seq.Requests[i-1].Time,
			b[i], res.B[i], res.C[i], d, offline.Fig6C[i], paperD)
	}
	sched, err := res.Schedule()
	if err != nil {
		return nil, err
	}
	rep.notef("optimal cost C(7) = %.4g (paper: 8.9); schedule: %s", res.Cost(), sched)
	rep.notef("space-time diagram (cf. the paper's Fig. 6):\n%s%s",
		model.RenderSpaceTime(seq, sched, 72), model.RenderLegend())
	return rep, nil
}

// Fig7 reproduces the online-section machinery on an SC epoch: the schedule
// of Fig. 7, the cost-preserving DT transform of Fig. 8 (Definition 10),
// and the V-/H-reductions of Fig. 8/9 feeding the Lemma 7/8 bounds.
func Fig7(seed int64) (*Report, error) {
	rng := rand.New(rand.NewSource(seed))
	// An epoch-shaped workload: hops and revisits around the speculative
	// window so that transfers, hits, expirations and extensions all occur.
	cm := model.Unit
	seq := workload.MarkovHop{M: 4, Stay: 0.5, MeanGap: cm.Delta() * 0.8}.Generate(rng, 40)
	lc, err := online.CheckLemmas(seq, cm, online.SpeculativeCaching{})
	if err != nil {
		return nil, err
	}
	run, err := online.Run(online.SpeculativeCaching{EpochTransfers: 5}, seq, cm)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "E4/Fig7-9",
		Title: "SC epoch, DT transform, and the reduction bounds",
		Table: &stats.Table{Header: []string{"check", "left", "relation", "right", "holds"}},
	}
	rep.Table.Add("Π(DT) = Π(SC) (Def. 10)", lc.DTTotal, "=", lc.SC, lc.DTEqualsSC)
	rep.Table.Add("Lemma 7: Π(SC)−V−H ≤ 3n'λ", lc.SC-lc.Red.V-lc.Red.H, "<=", 3*float64(lc.Red.NPrime)*cm.Lambda, lc.SCUpper)
	rep.Table.Add("Lemma 8: Π(OPT)−V−H ≥ n'λ", lc.Opt-lc.Red.V-lc.Red.H, ">=", float64(lc.Red.NPrime)*cm.Lambda, lc.OptLower)
	rep.Table.Add("Theorem 3: Π(SC) ≤ 3·Π(OPT)", lc.SC, "<=", 3*lc.Opt, lc.Theorem3)
	rep.notef("epoch variant SC(epoch=5): cost %.4g over %d transfers and %d hits",
		run.Stats.Cost, run.Stats.Transfers, run.Stats.CacheHits)
	rep.notef("reductions: V=%.4g H=%.4g n'=%d", lc.Red.V, lc.Red.H, lc.Red.NPrime)
	return rep, nil
}

// ComplexityConfig sizes experiment E5.
type ComplexityConfig struct {
	Ns      []int // request-count sweep at fixed M
	M       int
	MSweep  []int // server-count sweep at fixed NFixed
	NFixed  int
	Repeats int
}

// DefaultComplexity is the configuration used by dcbench.
var DefaultComplexity = ComplexityConfig{
	Ns:      []int{1000, 2000, 4000, 8000, 16000},
	M:       16,
	MSweep:  []int{4, 8, 16, 32, 64, 128},
	NFixed:  4000,
	Repeats: 3,
}

// Complexity measures FastDP against the paper's Θ(n²) "straightforward"
// NaiveDP and the amortized-O(mn) SweepDP middle ground (experiment E5):
// wall time across an n-sweep and an m-sweep, empirical log-log growth
// exponents, and the speedup factor. The paper's claim is that the pointer
// structure removes the super-linear term in n; the fitted exponents make
// the claim quantitative — and the SweepDP column records the honest
// finding that bounding the scan at p(i) already restores O(mn) amortized
// (see EXPERIMENTS.md).
func Complexity(cfg ComplexityConfig, seed int64) (*Report, error) {
	rep := &Report{
		ID:    "E5/Complexity",
		Title: "O(mn) FastDP vs Θ(n²) NaiveDP vs amortized SweepDP",
		Table: &stats.Table{Header: []string{"sweep", "m", "n", "fast", "sweep", "naive", "naive/fast"}},
	}
	cm := model.CostModel{Mu: 1, Lambda: 2}
	var ns, fastTimes, sweepTimes, naiveTimes []float64
	for _, n := range cfg.Ns {
		seq := workload.Uniform{M: cfg.M, MeanGap: 1}.Generate(rand.New(rand.NewSource(seed)), n)
		fast, err := timeDP(offline.FastDP, seq, cm, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		sweep, err := timeDP(offline.SweepDP, seq, cm, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		naive, err := timeDP(offline.NaiveDP, seq, cm, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		ns = append(ns, float64(n))
		fastTimes = append(fastTimes, fast.Seconds())
		sweepTimes = append(sweepTimes, sweep.Seconds())
		naiveTimes = append(naiveTimes, naive.Seconds())
		rep.Table.Add("n", cfg.M, n, fast.String(), sweep.String(), naive.String(),
			naive.Seconds()/fast.Seconds())
	}
	for _, m := range cfg.MSweep {
		seq := workload.Uniform{M: m, MeanGap: 1}.Generate(rand.New(rand.NewSource(seed)), cfg.NFixed)
		fast, err := timeDP(offline.FastDP, seq, cm, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		sweep, err := timeDP(offline.SweepDP, seq, cm, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		naive, err := timeDP(offline.NaiveDP, seq, cm, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		rep.Table.Add("m", m, cfg.NFixed, fast.String(), sweep.String(), naive.String(),
			naive.Seconds()/fast.Seconds())
	}
	fastSlope, err := stats.LogLogSlope(ns, fastTimes)
	if err != nil {
		return nil, err
	}
	sweepSlope, err := stats.LogLogSlope(ns, sweepTimes)
	if err != nil {
		return nil, err
	}
	naiveSlope, err := stats.LogLogSlope(ns, naiveTimes)
	if err != nil {
		return nil, err
	}
	rep.notef("empirical growth in n: FastDP ~ n^%.2f (theory 1), SweepDP ~ n^%.2f (amortized 1), NaiveDP ~ n^%.2f (theory 2)",
		fastSlope, sweepSlope, naiveSlope)
	return rep, nil
}

func timeDP(dp func(*model.Sequence, model.CostModel) (*offline.Result, error),
	seq *model.Sequence, cm model.CostModel, repeats int) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		if _, err := dp(seq, cm); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// Ratio sweeps the competitive ratio of SC across cost models and workload
// families (experiment E6). Every measured ratio must respect Theorem 3's
// bound of 3.
func Ratio(seed int64, n int) (*Report, error) {
	rep := &Report{
		ID:    "E6/Ratio",
		Title: "Measured competitive ratio of SC (Theorem 3 bound: 3)",
		Table: &stats.Table{Header: []string{"workload", "λ/μ", "SC cost", "OPT cost", "ratio"}},
	}
	worst := 0.0
	series := map[string][]float64{}
	var order []string
	for _, lambda := range []float64{0.1, 0.3, 1, 3, 10} {
		cm := model.CostModel{Mu: 1, Lambda: lambda}
		rng := rand.New(rand.NewSource(seed))
		for _, g := range workload.Standard(8, cm.Delta()) {
			seq := g.Generate(rng, n)
			pt, err := online.CompetitiveRatio(online.SpeculativeCaching{}, seq, cm)
			if err != nil {
				return nil, err
			}
			if pt.Ratio > worst {
				worst = pt.Ratio
			}
			rep.Table.Add(g.Name(), lambda, pt.Cost, pt.Opt, pt.Ratio)
			if _, seen := series[g.Name()]; !seen {
				order = append(order, g.Name())
			}
			series[g.Name()] = append(series[g.Name()], pt.Ratio)
			if pt.Ratio > 3+1e-9 {
				return nil, fmt.Errorf("experiments: ratio %v exceeds 3 on %s (λ=%v)", pt.Ratio, g.Name(), lambda)
			}
		}
	}
	rep.notef("worst observed ratio: %.4f <= 3", worst)
	for _, name := range order {
		rep.notef("ratio across λ/μ ∈ {0.1..10} for %-24s %s", name, stats.Sparkline(series[name]))
	}
	return rep, nil
}

// Policies compares SC with the baselines and a TTL(τ) ablation across the
// workload suite (experiment E7), normalizing every cost to the off-line
// optimum.
func Policies(seed int64, n int) (*Report, error) {
	cm := model.Unit
	policies := []online.Runner{
		online.SpeculativeCaching{},
		online.SpeculativeCaching{Window: cm.Delta() / 4},
		online.SpeculativeCaching{Window: cm.Delta() * 4},
		online.AlwaysMigrate{},
		online.KeepEverywhere{},
	}
	header := []string{"workload", "OPT"}
	for _, p := range policies {
		header = append(header, p.Name()+"/OPT")
	}
	rep := &Report{
		ID:    "E7/Policies",
		Title: "Online policies normalized to the off-line optimum",
		Table: &stats.Table{Header: header},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, g := range workload.Standard(8, cm.Delta()) {
		seq := g.Generate(rng, n)
		opt, err := offline.FastDP(seq, cm)
		if err != nil {
			return nil, err
		}
		row := []interface{}{g.Name(), opt.Cost()}
		for _, p := range policies {
			res, err := online.Run(p, seq, cm)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Stats.Cost/opt.Cost())
		}
		rep.Table.Add(row...)
	}
	rep.notef("TTL(Δt/4) under-caches and TTL(4Δt) over-caches; SC's window λ/μ balances both")
	return rep, nil
}
