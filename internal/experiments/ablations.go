package experiments

import (
	"fmt"
	"math/rand"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/stats"
	"datacache/internal/workload"
)

// Replication is ablation E10: how much of the optimum's advantage comes
// from holding multiple copies? It compares the unrestricted optimum
// (FastDP) against the optimal *single-copy* schedule and the cheap O(n)
// bounds, across workloads whose revisit gaps straddle the speculative
// window — the regime boundary where replication starts paying.
func Replication(seed int64, n int) (*Report, error) {
	cm := model.Unit
	rep := &Report{
		ID:    "E10/Replication",
		Title: "Value of replication: unrestricted vs single-copy optimum",
		Table: &stats.Table{Header: []string{"workload", "OPT", "single-copy OPT", "single/OPT", "lower bound", "upper bound"}},
	}
	gens := []workload.Generator{
		workload.MarkovHop{M: 6, Stay: 0.9, MeanGap: 0.2}, // tight revisits: replication pays
		workload.MarkovHop{M: 6, Stay: 0.9, MeanGap: 2.0}, // loose revisits: one copy suffices
		workload.Bursty{M: 6, BurstLen: 8, WithinGap: 0.1, BetweenGap: 6},
		workload.Uniform{M: 6, MeanGap: 0.15},
		workload.Uniform{M: 6, MeanGap: 3},
	}
	for _, g := range gens {
		seq := g.Generate(rand.New(rand.NewSource(seed)), n)
		opt, err := offline.FastDP(seq, cm)
		if err != nil {
			return nil, err
		}
		single, err := offline.SingleCopyOptimal(seq, cm)
		if err != nil {
			return nil, err
		}
		bounds, err := offline.ComputeBounds(seq, cm)
		if err != nil {
			return nil, err
		}
		rep.Table.Add(g.Name(), opt.Cost(), single, single/opt.Cost(), bounds.Lower, bounds.Upper)
	}
	rep.notef("single/OPT ≈ 1 when revisit gaps exceed Δt=λ/μ; replication pays below it")
	return rep, nil
}

// Window is ablation E11: the retention-window design choice. It sweeps
// fixed TTL multiples of Δt and includes the learning AdaptiveTTL, across
// workload families; SC is the w = Δt column. The sweep shows Δt is the
// best *fixed* window only in the worst case — per-workload optima differ,
// which is precisely what AdaptiveTTL exploits.
func Window(seed int64, n int) (*Report, error) {
	cm := model.Unit
	multiples := []float64{0.25, 0.5, 1, 2, 4}
	header := []string{"workload", "OPT"}
	for _, f := range multiples {
		if f == 1 {
			header = append(header, "SC(Δt)/OPT")
		} else {
			header = append(header, fmt.Sprintf("TTL(%gΔt)/OPT", f))
		}
	}
	header = append(header, "AdaptiveTTL/OPT")
	rep := &Report{
		ID:    "E11/Window",
		Title: "Retention-window ablation: fixed TTL sweep vs learning",
		Table: &stats.Table{Header: header},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, g := range workload.Standard(8, cm.Delta()) {
		seq := g.Generate(rng, n)
		opt, err := offline.FastDP(seq, cm)
		if err != nil {
			return nil, err
		}
		row := []interface{}{g.Name(), opt.Cost()}
		for _, f := range multiples {
			res, err := online.Run(online.SpeculativeCaching{Window: cm.Delta() * f}, seq, cm)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Stats.Cost/opt.Cost())
		}
		ad, err := online.Run(online.AdaptiveTTL{}, seq, cm)
		if err != nil {
			return nil, err
		}
		row = append(row, ad.Stats.Cost/opt.Cost())
		rep.Table.Add(row...)
	}
	rep.notef("only w = Δt carries the 3-competitive guarantee; AdaptiveTTL trades the proof for per-workload fit")
	return rep, nil
}

// Epoch is ablation E12: the epoch-restart design choice of the SC
// algorithm. The proof is per-epoch, so any epoch size keeps the bound;
// the sweep measures what restarts actually cost or save.
func Epoch(seed int64, n int) (*Report, error) {
	cm := model.Unit
	epochs := []int{0, 1, 4, 16, 64}
	header := []string{"workload"}
	for _, e := range epochs {
		if e == 0 {
			header = append(header, "no epochs")
		} else {
			header = append(header, fmt.Sprintf("epoch=%d", e))
		}
	}
	rep := &Report{
		ID:    "E12/Epoch",
		Title: "Epoch-size ablation for SC (cost normalized to OPT)",
		Table: &stats.Table{Header: header},
	}
	rng := rand.New(rand.NewSource(seed))
	worst := 0.0
	for _, g := range workload.Standard(8, cm.Delta()) {
		seq := g.Generate(rng, n)
		opt, err := offline.FastDP(seq, cm)
		if err != nil {
			return nil, err
		}
		row := []interface{}{g.Name()}
		for _, e := range epochs {
			res, err := online.Run(online.SpeculativeCaching{EpochTransfers: e}, seq, cm)
			if err != nil {
				return nil, err
			}
			ratio := res.Stats.Cost / opt.Cost()
			if ratio > worst {
				worst = ratio
			}
			row = append(row, ratio)
		}
		rep.Table.Add(row...)
	}
	rep.notef("worst ratio across all epoch sizes: %.4f <= 3 (the per-epoch proof composes)", worst)
	return rep, nil
}
