package experiments

import (
	"math/rand"

	"datacache/internal/cloudsim"
	"datacache/internal/model"
	"datacache/internal/online"
	"datacache/internal/stats"
	"datacache/internal/workload"
)

// Faults is experiment E14: availability economics under copy loss. The
// paper's model guarantees a live copy by construction; real clusters lose
// copies. The sweep injects Poisson copy-wipes at increasing intensity and
// measures the total bill and the number of β-uploads (recoveries from
// external storage, the paper's Table II β) for two β regimes — cheap
// re-upload and expensive re-upload — quantifying how much the
// speculative-caching redundancy is worth as insurance.
func Faults(seed int64, n int) (*Report, error) {
	cm := model.Unit
	rep := &Report{
		ID:    "E14/Faults",
		Title: "Fault injection: cost and β-uploads vs copy-loss intensity",
		Table: &stats.Table{Header: []string{"fault rate", "faults", "losses", "uploads(β=2)", "cost(β=2)", "uploads(β=20)", "cost(β=20)", "baseline"}},
	}
	rng := rand.New(rand.NewSource(seed))
	seq := workload.MarkovHop{M: 6, Stay: 0.75, MeanGap: 0.6}.Generate(rng, n)
	base, err := online.Run(online.SpeculativeCaching{}, seq, cm)
	if err != nil {
		return nil, err
	}
	horizon := seq.End()
	for _, rate := range []float64{0, 0.02, 0.05, 0.1, 0.25} {
		faults := poissonFaults(rand.New(rand.NewSource(seed+7)), seq.M, horizon, rate)
		cheap, err := cloudsim.RunWithFaults(seq, cm, online.SpeculativeCaching{}, faults, 2)
		if err != nil {
			return nil, err
		}
		dear, err := cloudsim.RunWithFaults(seq, cm, online.SpeculativeCaching{}, faults, 20)
		if err != nil {
			return nil, err
		}
		rep.Table.Add(rate, len(faults), cheap.Lost, cheap.Uploads, cheap.Cost,
			dear.Uploads, dear.Cost, base.Stats.Cost)
	}
	rep.notef("losses rarely force uploads until the wipe rate rivals the request rate: the speculative replicas double as fault tolerance")
	return rep, nil
}

// poissonFaults draws per-server Poisson wipe times over the horizon.
func poissonFaults(rng *rand.Rand, m int, horizon, ratePerServer float64) []cloudsim.Fault {
	var out []cloudsim.Fault
	if ratePerServer <= 0 {
		return out
	}
	for j := 1; j <= m; j++ {
		t := 0.0
		for {
			t += rng.ExpFloat64() / ratePerServer
			if t >= horizon {
				break
			}
			out = append(out, cloudsim.Fault{Server: model.ServerID(j), At: t})
		}
	}
	// RunWithFaults sorts; keep the draw order stable regardless.
	return out
}
