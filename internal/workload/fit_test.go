package workload

import (
	"math"
	"math/rand"
	"testing"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
)

func TestFitRecoversMarkovParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	src := MarkovHop{M: 6, Stay: 0.75, MeanGap: 1.3}
	seq := src.Generate(rng, 8000)
	fit, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Stay-0.75) > 0.03 {
		t.Errorf("fitted stay = %v, want ≈0.75", fit.Stay)
	}
	if math.Abs(fit.MeanGap-1.3) > 0.1 {
		t.Errorf("fitted gap = %v, want ≈1.3", fit.MeanGap)
	}
	if fit.M != 6 {
		t.Errorf("m = %d", fit.M)
	}
}

func TestFitRoundTripPreservesCostProfile(t *testing.T) {
	// Synthetic traffic generated from a fitted model should induce a
	// similar SC-vs-OPT cost profile as the source trace — the property
	// that makes workload modeling useful for capacity planning.
	rng := rand.New(rand.NewSource(229))
	cm := model.Unit
	src := MarkovHop{M: 5, Stay: 0.8, MeanGap: 0.7}.Generate(rng, 3000)
	fit, err := Fit(src)
	if err != nil {
		t.Fatal(err)
	}
	synth := fit.Generator().Generate(rand.New(rand.NewSource(231)), 3000)

	profile := func(seq *model.Sequence) float64 {
		pt, err := online.CompetitiveRatio(online.SpeculativeCaching{}, seq, cm)
		if err != nil {
			t.Fatal(err)
		}
		return pt.Ratio
	}
	srcRatio, synthRatio := profile(src), profile(synth)
	if math.Abs(srcRatio-synthRatio) > 0.15 {
		t.Errorf("cost profiles diverge: source ratio %v vs synthetic %v", srcRatio, synthRatio)
	}
	// And the per-request optimum should be in the same ballpark.
	srcOpt, err := offline.FastDP(src, cm)
	if err != nil {
		t.Fatal(err)
	}
	synthOpt, err := offline.FastDP(synth, cm)
	if err != nil {
		t.Fatal(err)
	}
	a := srcOpt.Cost() / float64(src.N())
	b := synthOpt.Cost() / float64(synth.N())
	if math.Abs(a-b) > 0.2*math.Max(a, b) {
		t.Errorf("per-request optima diverge: %v vs %v", a, b)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(&model.Sequence{M: 0}); err == nil {
		t.Error("invalid sequence accepted")
	}
	one := &model.Sequence{M: 2, Origin: 1, Requests: []model.Request{{Server: 1, Time: 1}}}
	if _, err := Fit(one); err == nil {
		t.Error("single-request trace accepted")
	}
}

func TestFitTopShare(t *testing.T) {
	seq := &model.Sequence{M: 3, Origin: 1, Requests: []model.Request{
		{Server: 1, Time: 1}, {Server: 1, Time: 2}, {Server: 1, Time: 3}, {Server: 2, Time: 4},
	}}
	fit, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.TopShare-0.75) > 1e-9 {
		t.Errorf("top share = %v, want 0.75", fit.TopShare)
	}
}
