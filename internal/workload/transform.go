package workload

import (
	"fmt"
	"math/rand"

	"datacache/internal/model"
)

// Scale returns a copy of the sequence with every request time multiplied
// by alpha > 0. Together with dividing the caching rate μ by alpha it
// leaves every schedule cost invariant — the time-unit freedom of the cost
// model, asserted as a property test on the optimizer.
func Scale(seq *model.Sequence, alpha float64) (*model.Sequence, error) {
	if !(alpha > 0) {
		return nil, fmt.Errorf("workload: scale factor %v must be positive", alpha)
	}
	out := seq.Clone()
	for i := range out.Requests {
		out.Requests[i].Time *= alpha
	}
	return out, out.Validate()
}

// Slice extracts the requests with time in (from, to], re-based so the
// slice starts at time zero (the origin copy is assumed present at the
// slice start, matching the model's boundary convention).
func Slice(seq *model.Sequence, from, to float64) (*model.Sequence, error) {
	if from < 0 || to <= from {
		return nil, fmt.Errorf("workload: bad slice window (%v, %v]", from, to)
	}
	out := &model.Sequence{M: seq.M, Origin: seq.Origin}
	for _, r := range seq.Requests {
		if r.Time > from && r.Time <= to {
			out.Requests = append(out.Requests, model.Request{Server: r.Server, Time: r.Time - from})
		}
	}
	return out, out.Validate()
}

// Thin keeps each request independently with probability p, preserving
// order and times. p is clamped to [0, 1].
func Thin(seq *model.Sequence, p float64, rng *rand.Rand) *model.Sequence {
	if p >= 1 {
		return seq.Clone()
	}
	out := &model.Sequence{M: seq.M, Origin: seq.Origin}
	if p <= 0 {
		return out
	}
	for _, r := range seq.Requests {
		if rng.Float64() < p {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// Merge interleaves several sequences over the same cluster into one
// time-ordered sequence. All inputs must agree on M and Origin, and no two
// requests (across inputs) may share a timestamp.
func Merge(seqs ...*model.Sequence) (*model.Sequence, error) {
	if len(seqs) == 0 {
		return nil, fmt.Errorf("workload: nothing to merge")
	}
	out := &model.Sequence{M: seqs[0].M, Origin: seqs[0].Origin}
	for i, s := range seqs {
		if s.M != out.M || s.Origin != out.Origin {
			return nil, fmt.Errorf("workload: sequence %d has m=%d origin=%d, want m=%d origin=%d",
				i, s.M, s.Origin, out.M, out.Origin)
		}
		out.Requests = append(out.Requests, s.Requests...)
	}
	model.SortRequests(out.Requests)
	return out, out.Validate()
}
