package workload_test

import (
	"fmt"
	"math/rand"

	"datacache/internal/model"
	"datacache/internal/workload"
)

// Generating a reproducible sticky workload and inspecting its locality.
func ExampleMarkovHop() {
	gen := workload.MarkovHop{M: 4, Stay: 0.9, MeanGap: 1}
	seq := gen.Generate(rand.New(rand.NewSource(1)), 1000)
	st := model.AnalyzeSequence(seq)
	fmt.Printf("%s: n=%d, stay=%.2f\n", gen.Name(), st.N, st.StayFrac)
	// Output: markov(m=4,p=0.9): n=1000, stay=0.90
}

// Fitting a model to a trace and synthesizing matched traffic.
func ExampleFit() {
	src := workload.MarkovHop{M: 5, Stay: 0.8, MeanGap: 2}
	seq := src.Generate(rand.New(rand.NewSource(2)), 5000)
	fit, err := workload.Fit(seq)
	if err != nil {
		panic(err)
	}
	synth := fit.Generator().Generate(rand.New(rand.NewSource(3)), 100)
	fmt.Printf("fitted stay %.1f, synthesized %d requests\n", fit.Stay, synth.N())
	// Output: fitted stay 0.8, synthesized 100 requests
}

// Time-unit freedom: scaling times by α and the caching rate by 1/α leaves
// every schedule cost unchanged.
func ExampleScale() {
	seq := &model.Sequence{M: 2, Origin: 1, Requests: []model.Request{
		{Server: 2, Time: 1},
		{Server: 2, Time: 3},
	}}
	scaled, err := workload.Scale(seq, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("last request moved from t=%g to t=%g\n",
		seq.Requests[1].Time, scaled.Requests[1].Time)
	// Output: last request moved from t=3 to t=30
}
