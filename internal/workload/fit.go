package workload

import (
	"fmt"

	"datacache/internal/model"
)

// FitResult captures the parameters of a MarkovHop model estimated from a
// trace: workload modeling in the style systems papers use to synthesize
// traffic matched to production traces.
type FitResult struct {
	M       int
	Stay    float64 // fraction of requests on the previous request's server
	MeanGap float64 // mean inter-arrival time
	// PopularityskewTop is the share of requests on the most popular
	// server, a cheap skew indicator (1/m means uniform).
	TopShare float64
}

// Fit estimates MarkovHop parameters from a trace. It needs at least two
// requests.
func Fit(seq *model.Sequence) (FitResult, error) {
	if err := seq.Validate(); err != nil {
		return FitResult{}, err
	}
	if seq.N() < 2 {
		return FitResult{}, fmt.Errorf("workload: need at least 2 requests to fit, got %d", seq.N())
	}
	var out FitResult
	out.M = seq.M
	stays := 0
	counts := make([]int, seq.M+1)
	for i, r := range seq.Requests {
		counts[r.Server]++
		if i > 0 && r.Server == seq.Requests[i-1].Server {
			stays++
		}
	}
	out.Stay = float64(stays) / float64(seq.N()-1)
	out.MeanGap = seq.End() / float64(seq.N())
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	out.TopShare = float64(top) / float64(seq.N())
	return out, nil
}

// Generator materializes the fitted model as a MarkovHop generator, closing
// the loop: Fit(g.Generate(...)) ≈ g's parameters, and Generate on a fitted
// result produces synthetic traffic matched to the source trace.
func (f FitResult) Generator() Generator {
	return MarkovHop{M: f.M, Stay: f.Stay, MeanGap: f.MeanGap}
}
