package workload

import (
	"math"
	"math/rand"
	"testing"

	"datacache/internal/model"
	"datacache/internal/offline"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

// TestScaleInvariance asserts the time-unit freedom of the cost model: for
// any α > 0, the optimal cost of the α-scaled instance under rate μ/α
// equals the optimal cost of the original under μ.
func TestScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	for trial := 0; trial < 100; trial++ {
		seq := Uniform{M: 2 + rng.Intn(4), MeanGap: 0.5}.Generate(rng, 1+rng.Intn(30))
		cm := model.CostModel{Mu: 0.3 + rng.Float64()*2, Lambda: 0.3 + rng.Float64()*2}
		alpha := 0.1 + rng.Float64()*5
		scaled, err := Scale(seq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := offline.FastDP(seq, cm)
		if err != nil {
			t.Fatal(err)
		}
		scaledRes, err := offline.FastDP(scaled, model.CostModel{Mu: cm.Mu / alpha, Lambda: cm.Lambda})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(orig.Cost(), scaledRes.Cost()) {
			t.Fatalf("trial %d: scale invariance broken: %v vs %v (α=%v)",
				trial, orig.Cost(), scaledRes.Cost(), alpha)
		}
	}
}

// TestCostHomogeneity asserts degree-1 homogeneity: multiplying both rates
// by c multiplies the optimum by c.
func TestCostHomogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 100; trial++ {
		seq := MarkovHop{M: 4, Stay: 0.7, MeanGap: 0.8}.Generate(rng, 1+rng.Intn(25))
		cm := model.CostModel{Mu: 0.5 + rng.Float64(), Lambda: 0.5 + rng.Float64()}
		c := 0.2 + rng.Float64()*8
		a, err := offline.FastDP(seq, cm)
		if err != nil {
			t.Fatal(err)
		}
		b, err := offline.FastDP(seq, model.CostModel{Mu: c * cm.Mu, Lambda: c * cm.Lambda})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(c*a.Cost(), b.Cost()) {
			t.Fatalf("trial %d: homogeneity broken: c*%v != %v (c=%v)", trial, a.Cost(), b.Cost(), c)
		}
	}
}

func TestScaleErrors(t *testing.T) {
	seq := &model.Sequence{M: 2, Origin: 1, Requests: []model.Request{{Server: 1, Time: 1}}}
	for _, alpha := range []float64{0, -1, math.Inf(1)} {
		if _, err := Scale(seq, alpha); err == nil && alpha <= 0 {
			t.Errorf("Scale accepted alpha=%v", alpha)
		}
	}
}

func TestSlice(t *testing.T) {
	seq := &model.Sequence{M: 3, Origin: 2, Requests: []model.Request{
		{Server: 1, Time: 1},
		{Server: 2, Time: 2},
		{Server: 3, Time: 3},
		{Server: 1, Time: 4},
	}}
	out, err := Slice(seq, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != 2 || out.Requests[0].Time != 1 || out.Requests[0].Server != 2 {
		t.Fatalf("slice = %+v", out.Requests)
	}
	if out.Origin != seq.Origin || out.M != seq.M {
		t.Error("slice lost instance parameters")
	}
	if _, err := Slice(seq, 3, 3); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := Slice(seq, -1, 3); err == nil {
		t.Error("negative from accepted")
	}
}

func TestThin(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	seq := Uniform{M: 3, MeanGap: 0.5}.Generate(rng, 400)
	if got := Thin(seq, 1.5, rng); got.N() != seq.N() {
		t.Errorf("Thin(p>=1) dropped requests")
	}
	if got := Thin(seq, 0, rng); got.N() != 0 {
		t.Errorf("Thin(0) kept requests")
	}
	half := Thin(seq, 0.5, rand.New(rand.NewSource(1)))
	if half.N() < 140 || half.N() > 260 {
		t.Errorf("Thin(0.5) kept %d of 400", half.N())
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a := &model.Sequence{M: 3, Origin: 1, Requests: []model.Request{
		{Server: 1, Time: 1}, {Server: 2, Time: 3},
	}}
	b := &model.Sequence{M: 3, Origin: 1, Requests: []model.Request{
		{Server: 3, Time: 2}, {Server: 1, Time: 4},
	}}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.N() != 4 {
		t.Fatalf("merged n = %d", merged.N())
	}
	for i := 1; i < 4; i++ {
		if merged.Requests[i].Time <= merged.Requests[i-1].Time {
			t.Fatalf("merge not sorted: %+v", merged.Requests)
		}
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	c := &model.Sequence{M: 4, Origin: 1}
	if _, err := Merge(a, c); err == nil {
		t.Error("mismatched m accepted")
	}
	dup := &model.Sequence{M: 3, Origin: 1, Requests: []model.Request{{Server: 2, Time: 1}}}
	if _, err := Merge(a, dup); err == nil {
		t.Error("colliding timestamps accepted")
	}
}

// TestSliceOptimalityComposition: slicing at a quiet point and re-solving
// each half bounds the whole — the parts can never cost more than the whole
// plus one bridging transfer-or-hold, and never less than the running
// bound. This is a sanity property tying the transforms to the optimizer.
func TestSlicePartsBoundWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	cm := model.Unit
	for trial := 0; trial < 50; trial++ {
		seq := Uniform{M: 3, MeanGap: 1}.Generate(rng, 30)
		mid := seq.Requests[14].Time
		left, err := Slice(seq, 0, mid)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := offline.FastDP(seq, cm)
		if err != nil {
			t.Fatal(err)
		}
		lres, err := offline.FastDP(left, cm)
		if err != nil {
			t.Fatal(err)
		}
		// The whole instance contains the left half's requests with the
		// same relative times, so the left optimum cannot exceed the whole.
		if lres.Cost() > whole.Cost()+1e-9 {
			t.Fatalf("trial %d: left prefix optimum %v exceeds whole %v", trial, lres.Cost(), whole.Cost())
		}
	}
}
