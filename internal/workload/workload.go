// Package workload synthesizes request sequences for the experiments. Each
// generator is deterministic given a seed, produces strictly increasing
// request times, and models one of the access patterns the paper's
// evaluation story needs: uniform and Zipf-popularity traffic, Poisson and
// bursty arrivals, sticky Markov hopping (spatial-temporal locality), a
// periodic commuter route, the fully predictable cycle trajectory the
// hybrid planner's predictor learns exactly, and the adversarial anti-SC
// pattern used to pressure the competitive bound.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"datacache/internal/model"
)

// Generator produces request sequences of a requested length.
type Generator interface {
	// Name identifies the workload family in reports.
	Name() string
	// Generate draws an n-request sequence using rng.
	Generate(rng *rand.Rand, n int) *model.Sequence
}

// minGap keeps request times strictly increasing even when a sampled
// inter-arrival rounds to zero.
const minGap = 1e-6

// Uniform is memoryless traffic: exponential inter-arrivals with the given
// mean, each request on a uniformly random server.
type Uniform struct {
	M       int     // number of servers
	MeanGap float64 // mean inter-arrival time
}

// Name implements Generator.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(m=%d)", u.M) }

// Generate implements Generator.
func (u Uniform) Generate(rng *rand.Rand, n int) *model.Sequence {
	seq := &model.Sequence{M: u.M, Origin: 1}
	t := 0.0
	for i := 0; i < n; i++ {
		t += expGap(rng, u.MeanGap)
		seq.Requests = append(seq.Requests, model.Request{
			Server: model.ServerID(1 + rng.Intn(u.M)),
			Time:   t,
		})
	}
	return seq
}

// Zipf skews server popularity with a Zipf(s) law over the m servers, the
// classic model for hot-spot data services. Arrival gaps are exponential.
type Zipf struct {
	M       int
	S       float64 // Zipf exponent, > 1
	MeanGap float64
}

// Name implements Generator.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(m=%d,s=%.2g)", z.M, z.S) }

// Generate implements Generator.
func (z Zipf) Generate(rng *rand.Rand, n int) *model.Sequence {
	s := z.S
	if s <= 1 {
		s = 1.1
	}
	zf := rand.NewZipf(rng, s, 1, uint64(z.M-1))
	seq := &model.Sequence{M: z.M, Origin: 1}
	t := 0.0
	for i := 0; i < n; i++ {
		t += expGap(rng, z.MeanGap)
		seq.Requests = append(seq.Requests, model.Request{
			Server: model.ServerID(1 + zf.Uint64()),
			Time:   t,
		})
	}
	return seq
}

// Bursty issues tight same-server bursts separated by long idle gaps —
// the pattern where speculative caching pays off most.
type Bursty struct {
	M          int
	BurstLen   int     // requests per burst
	WithinGap  float64 // mean gap inside a burst
	BetweenGap float64 // mean gap between bursts
}

// Name implements Generator.
func (b Bursty) Name() string { return fmt.Sprintf("bursty(m=%d,len=%d)", b.M, b.BurstLen) }

// Generate implements Generator.
func (b Bursty) Generate(rng *rand.Rand, n int) *model.Sequence {
	seq := &model.Sequence{M: b.M, Origin: 1}
	t := 0.0
	for len(seq.Requests) < n {
		sv := model.ServerID(1 + rng.Intn(b.M))
		for k := 0; k < b.BurstLen && len(seq.Requests) < n; k++ {
			t += expGap(rng, b.WithinGap)
			seq.Requests = append(seq.Requests, model.Request{Server: sv, Time: t})
		}
		t += expGap(rng, b.BetweenGap)
	}
	return seq
}

// MarkovHop is sticky traffic: each request stays on the previous server
// with probability Stay, else hops to a uniformly random other server. It
// is the simplest tunable-locality model of the paper's spatial-temporal
// trajectory patterns.
type MarkovHop struct {
	M       int
	Stay    float64 // probability of staying, in [0,1)
	MeanGap float64
}

// Name implements Generator.
func (mk MarkovHop) Name() string { return fmt.Sprintf("markov(m=%d,p=%.2g)", mk.M, mk.Stay) }

// Generate implements Generator.
func (mk MarkovHop) Generate(rng *rand.Rand, n int) *model.Sequence {
	seq := &model.Sequence{M: mk.M, Origin: 1}
	cur := model.ServerID(1 + rng.Intn(mk.M))
	t := 0.0
	for i := 0; i < n; i++ {
		t += expGap(rng, mk.MeanGap)
		if rng.Float64() >= mk.Stay && mk.M > 1 {
			hop := 1 + rng.Intn(mk.M-1)
			cur = model.ServerID(1 + (int(cur-1)+hop)%mk.M)
		}
		seq.Requests = append(seq.Requests, model.Request{Server: cur, Time: t})
	}
	return seq
}

// Commuter cycles deterministically through a route of servers (home, work,
// gym, ...), issuing a cluster of requests at each stop — the mobile-user
// pattern the paper's introduction motivates with trajectory mining.
type Commuter struct {
	Route     []model.ServerID // visited in order, repeated
	M         int
	StopLen   int     // requests per stop
	StopGap   float64 // mean gap within a stop
	TravelGap float64 // gap between stops
}

// Name implements Generator.
func (c Commuter) Name() string { return fmt.Sprintf("commuter(m=%d,route=%d)", c.M, len(c.Route)) }

// Generate implements Generator.
func (c Commuter) Generate(rng *rand.Rand, n int) *model.Sequence {
	seq := &model.Sequence{M: c.M, Origin: 1}
	t := 0.0
	stop := 0
	for len(seq.Requests) < n {
		sv := c.Route[stop%len(c.Route)]
		stop++
		for k := 0; k < c.StopLen && len(seq.Requests) < n; k++ {
			t += expGap(rng, c.StopGap)
			seq.Requests = append(seq.Requests, model.Request{Server: sv, Time: t})
		}
		t += c.TravelGap + expGap(rng, c.StopGap)
	}
	return seq
}

// Cycle is the fully predictable trajectory: requests walk the servers
// 1..M in order with a fixed gap — zero entropy, so an order-k Markov
// predictor learns it exactly after one lap. It is the hybrid planner's
// best case (the opposite pole from Adversarial): drive it to watch
// dc_planner_predicted_hit_ratio approach 1.
type Cycle struct {
	M   int
	Gap float64 // fixed inter-arrival gap (default 1)
}

// Name implements Generator.
func (c Cycle) Name() string { return fmt.Sprintf("cycle(m=%d,gap=%g)", c.M, c.Gap) }

// Generate implements Generator. The rng is unused: the trace is fully
// deterministic by construction.
func (c Cycle) Generate(rng *rand.Rand, n int) *model.Sequence {
	gap := c.Gap
	if gap <= 0 {
		gap = 1
	}
	seq := &model.Sequence{M: c.M, Origin: 1}
	for i := 0; i < n; i++ {
		seq.Requests = append(seq.Requests, model.Request{
			Server: model.ServerID(1 + i%c.M),
			Time:   float64(i+1) * gap,
		})
	}
	return seq
}

// Adversarial alternates between two servers with gaps just past the
// speculative window Δt = λ/μ, so every SC copy expires moments before it
// would have been useful. This is the pressure pattern of experiment E6.
type Adversarial struct {
	M      int
	Window float64 // the victim's speculative window Δt
	Slack  float64 // fractional overshoot past the window (default 1%)
}

// Name implements Generator.
func (a Adversarial) Name() string { return fmt.Sprintf("adversarial(Δt=%.2g)", a.Window) }

// Generate implements Generator.
func (a Adversarial) Generate(rng *rand.Rand, n int) *model.Sequence {
	slack := a.Slack
	if slack <= 0 {
		slack = 0.01
	}
	seq := &model.Sequence{M: maxInt(a.M, 2), Origin: 1}
	t := 0.0
	for i := 0; i < n; i++ {
		t += a.Window * (1 + slack)
		seq.Requests = append(seq.Requests, model.Request{
			Server: model.ServerID(1 + i%2),
			Time:   t,
		})
	}
	return seq
}

// Diurnal modulates a Poisson arrival process with a day/night cycle by
// thinning: candidate arrivals at the peak rate are kept with probability
// proportional to a raised sinusoid of the given period. Server choice is
// sticky (as MarkovHop) so the workload combines temporal and spatial
// structure — the closest thing in the suite to a real service trace.
type Diurnal struct {
	M       int
	Period  float64 // length of one day
	PeakGap float64 // mean inter-arrival at the busiest moment
	Night   float64 // valley intensity as a fraction of peak, in [0,1]
	Stay    float64 // server stickiness
}

// Name implements Generator.
func (d Diurnal) Name() string { return fmt.Sprintf("diurnal(m=%d,T=%g)", d.M, d.Period) }

// Generate implements Generator.
func (d Diurnal) Generate(rng *rand.Rand, n int) *model.Sequence {
	night := math.Min(math.Max(d.Night, 0), 1)
	seq := &model.Sequence{M: d.M, Origin: 1}
	cur := model.ServerID(1 + rng.Intn(d.M))
	t := 0.0
	for len(seq.Requests) < n {
		t += expGap(rng, d.PeakGap)
		// Raised sinusoid in [night, 1]: peak mid-day, valley mid-night.
		phase := (1 - math.Cos(2*math.Pi*t/d.Period)) / 2
		keep := night + (1-night)*phase
		if rng.Float64() > keep {
			continue
		}
		if rng.Float64() >= d.Stay && d.M > 1 {
			hop := 1 + rng.Intn(d.M-1)
			cur = model.ServerID(1 + (int(cur-1)+hop)%d.M)
		}
		seq.Requests = append(seq.Requests, model.Request{Server: cur, Time: t})
	}
	return seq
}

// MultiUser interleaves several independent sticky users, each with its own
// home region, into one request stream. This is the regime the cloud data
// service actually faces — concurrent locality at several servers at once —
// and the one where multi-copy caching fundamentally beats a single nomadic
// copy (a lone copy cannot be in two homes at once).
type MultiUser struct {
	M       int
	Users   int     // concurrent users (>= 1)
	Stay    float64 // per-user stickiness
	MeanGap float64 // per-user mean inter-arrival
}

// Name implements Generator.
func (mu MultiUser) Name() string { return fmt.Sprintf("multiuser(m=%d,u=%d)", mu.M, mu.Users) }

// Generate implements Generator: each user walks its own MarkovHop chain
// anchored at a distinct home server; the streams are merged in time order
// with per-user jitter keeping timestamps unique.
func (mu MultiUser) Generate(rng *rand.Rand, n int) *model.Sequence {
	users := mu.Users
	if users < 1 {
		users = 1
	}
	seq := &model.Sequence{M: mu.M, Origin: 1}
	type cursor struct {
		at  model.ServerID
		t   float64
		jit float64
	}
	curs := make([]cursor, users)
	for u := range curs {
		curs[u] = cursor{
			at:  model.ServerID(1 + (u*maxInt(1, mu.M/users))%mu.M),
			t:   0,
			jit: float64(u+1) * 1e-9,
		}
	}
	for i := 0; i < n; i++ {
		// Advance the user whose next arrival is earliest; draw lazily.
		u := i % users
		c := &curs[u]
		c.t += expGap(rng, mu.MeanGap*float64(users))
		if rng.Float64() >= mu.Stay && mu.M > 1 {
			hop := 1 + rng.Intn(mu.M-1)
			c.at = model.ServerID(1 + (int(c.at-1)+hop)%mu.M)
		}
		seq.Requests = append(seq.Requests, model.Request{Server: c.at, Time: c.t + c.jit})
	}
	model.SortRequests(seq.Requests)
	return seq
}

// expGap samples an exponential inter-arrival with the given mean, floored
// to keep times strictly increasing.
func expGap(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return minGap
	}
	return math.Max(minGap, rng.ExpFloat64()*mean)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Standard returns the workload suite used by the ratio and policy
// experiments: one representative of each family, sized for the given
// server count and speculative window.
func Standard(m int, window float64) []Generator {
	return []Generator{
		Uniform{M: m, MeanGap: window},
		Zipf{M: m, S: 1.5, MeanGap: window},
		Bursty{M: m, BurstLen: 8, WithinGap: window / 4, BetweenGap: window * 6},
		MarkovHop{M: m, Stay: 0.8, MeanGap: window / 2},
		Commuter{M: m, Route: commuterRoute(m), StopLen: 6, StopGap: window / 4, TravelGap: window * 4},
		MultiUser{M: m, Users: min(3, m), Stay: 0.85, MeanGap: window / 2},
		Adversarial{M: m, Window: window},
	}
}

// commuterRoute builds a default 3-stop route inside 1..m.
func commuterRoute(m int) []model.ServerID {
	route := []model.ServerID{1, 2, 1, 3}
	for i := range route {
		if int(route[i]) > m {
			route[i] = model.ServerID(m)
		}
	}
	return route
}
