package workload

import (
	"math"
	"math/rand"
	"testing"

	"datacache/internal/model"
)

func testGenerators() []Generator {
	gens := Standard(6, 1.0)
	gens = append(gens,
		Uniform{M: 1, MeanGap: 0.5},
		Zipf{M: 3, S: 0.5, MeanGap: 1}, // exponent below 1 must be clamped
		Bursty{M: 2, BurstLen: 1, WithinGap: 0.1, BetweenGap: 2},
		MarkovHop{M: 1, Stay: 0, MeanGap: 1},
		Adversarial{M: 0, Window: 2}, // m floored to 2
		Cycle{M: 4, Gap: 0.5},
		Cycle{M: 3}, // gap defaulted to 1
	)
	return gens
}

func TestAllGeneratorsProduceValidSequences(t *testing.T) {
	for _, g := range testGenerators() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			for _, n := range []int{0, 1, 7, 200} {
				seq := g.Generate(rng, n)
				if seq.N() != n {
					t.Fatalf("n = %d, want %d", seq.N(), n)
				}
				if err := seq.Validate(); err != nil {
					t.Fatalf("invalid sequence: %v", err)
				}
			}
		})
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	for _, g := range testGenerators() {
		a := g.Generate(rand.New(rand.NewSource(42)), 50)
		b := g.Generate(rand.New(rand.NewSource(42)), 50)
		if len(a.Requests) != len(b.Requests) {
			t.Fatalf("%s: lengths differ", g.Name())
		}
		for i := range a.Requests {
			if a.Requests[i] != b.Requests[i] {
				t.Fatalf("%s: request %d differs between identical seeds", g.Name(), i)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := Zipf{M: 16, S: 2.0, MeanGap: 1}.Generate(rng, 5000)
	counts := make([]int, 17)
	for _, r := range seq.Requests {
		counts[r.Server]++
	}
	if counts[1] < 5*counts[8] {
		t.Errorf("expected strong skew: server1=%d server8=%d", counts[1], counts[8])
	}
}

func TestUniformCoversServers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := Uniform{M: 5, MeanGap: 1}.Generate(rng, 2000)
	seen := map[model.ServerID]int{}
	for _, r := range seq.Requests {
		seen[r.Server]++
	}
	for j := model.ServerID(1); j <= 5; j++ {
		if seen[j] < 200 {
			t.Errorf("server %d underrepresented: %d of 2000", j, seen[j])
		}
	}
}

func TestMarkovHopStickiness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seq := MarkovHop{M: 8, Stay: 0.9, MeanGap: 1}.Generate(rng, 3000)
	stays := 0
	for i := 1; i < len(seq.Requests); i++ {
		if seq.Requests[i].Server == seq.Requests[i-1].Server {
			stays++
		}
	}
	frac := float64(stays) / float64(len(seq.Requests)-1)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("stay fraction = %v, want ≈0.9", frac)
	}
}

func TestBurstyStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seq := Bursty{M: 4, BurstLen: 5, WithinGap: 0.01, BetweenGap: 10}.Generate(rng, 100)
	// Requests 0..4 share a server, 5..9 share a server, etc.
	for b := 0; b+5 <= 100; b += 5 {
		sv := seq.Requests[b].Server
		for k := 1; k < 5; k++ {
			if seq.Requests[b+k].Server != sv {
				t.Fatalf("burst at %d not on one server", b)
			}
		}
	}
}

func TestCommuterFollowsRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	route := []model.ServerID{2, 3, 2, 1}
	seq := Commuter{Route: route, M: 3, StopLen: 4, StopGap: 0.01, TravelGap: 5}.Generate(rng, 32)
	for stop := 0; stop < 8; stop++ {
		want := route[stop%len(route)]
		for k := 0; k < 4; k++ {
			if got := seq.Requests[stop*4+k].Server; got != want {
				t.Fatalf("stop %d request %d on s%d, want s%d", stop, k, got, want)
			}
		}
	}
}

func TestAdversarialSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	seq := Adversarial{M: 2, Window: 2, Slack: 0.05}.Generate(rng, 50)
	for i := 1; i < len(seq.Requests); i++ {
		gap := seq.Requests[i].Time - seq.Requests[i-1].Time
		if math.Abs(gap-2.1) > 1e-9 {
			t.Fatalf("gap %v, want 2.1 (window + 5%% slack)", gap)
		}
		if seq.Requests[i].Server == seq.Requests[i-1].Server {
			t.Fatalf("consecutive requests on the same server at %d", i)
		}
	}
}

func TestAdversarialDefaultSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	seq := Adversarial{M: 2, Window: 1}.Generate(rng, 3)
	if gap := seq.Requests[1].Time - seq.Requests[0].Time; math.Abs(gap-1.01) > 1e-9 {
		t.Errorf("default slack gap = %v, want 1.01", gap)
	}
}

func TestExpGapFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	if g := expGap(rng, 0); g != minGap {
		t.Errorf("zero mean gap = %v, want the floor %v", g, minGap)
	}
	for i := 0; i < 1000; i++ {
		if g := expGap(rng, 1e-12); g < minGap {
			t.Fatalf("gap %v below floor", g)
		}
	}
}

func TestDiurnalCycleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	d := Diurnal{M: 4, Period: 24, PeakGap: 0.02, Night: 0.05, Stay: 0.8}
	seq := d.Generate(rng, 6000)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mid-day windows must carry far more traffic than mid-night windows.
	day, nightCount := 0, 0
	for _, r := range seq.Requests {
		phase := r.Time - 24*float64(int(r.Time/24))
		switch {
		case phase > 9 && phase < 15: // around the peak at 12
			day++
		case phase < 3 || phase > 21: // around the valley at 0/24
			nightCount++
		}
	}
	if day < 5*nightCount {
		t.Errorf("day/night = %d/%d, want strong diurnal skew", day, nightCount)
	}
}

func TestDiurnalNightClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d := Diurnal{M: 2, Period: 10, PeakGap: 0.1, Night: -3, Stay: 0.5}
	seq := d.Generate(rng, 100)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.N() != 100 {
		t.Fatalf("n = %d", seq.N())
	}
}

func TestMultiUserInterleavesHomes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seq := MultiUser{M: 6, Users: 3, Stay: 0.95, MeanGap: 0.3}.Generate(rng, 3000)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	// With three very sticky users the *merged* stream must NOT look
	// sticky: consecutive requests usually belong to different users.
	stays := 0
	for i := 1; i < seq.N(); i++ {
		if seq.Requests[i].Server == seq.Requests[i-1].Server {
			stays++
		}
	}
	if frac := float64(stays) / float64(seq.N()-1); frac > 0.6 {
		t.Errorf("merged stay fraction %v too high; users not interleaving", frac)
	}
	// Several servers carry substantial traffic simultaneously.
	counts := map[model.ServerID]int{}
	for _, r := range seq.Requests {
		counts[r.Server]++
	}
	busy := 0
	for _, c := range counts {
		if c > 300 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("only %d busy home regions, want >= 3", busy)
	}
}

func TestMultiUserUsersClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	seq := MultiUser{M: 3, Users: 0, Stay: 0.5, MeanGap: 1}.Generate(rng, 20)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.N() != 20 {
		t.Fatalf("n = %d", seq.N())
	}
}

func TestStandardSuite(t *testing.T) {
	gens := Standard(4, 1.5)
	if len(gens) != 7 {
		t.Fatalf("suite size = %d, want 7", len(gens))
	}
	names := map[string]bool{}
	rng := rand.New(rand.NewSource(23))
	for _, g := range gens {
		if names[g.Name()] {
			t.Errorf("duplicate generator name %q", g.Name())
		}
		names[g.Name()] = true
		seq := g.Generate(rng, 30)
		if err := seq.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if seq.M < 2 {
			t.Errorf("%s: m = %d", g.Name(), seq.M)
		}
	}
}

func TestCommuterRouteClamped(t *testing.T) {
	for _, g := range Standard(2, 1) {
		seq := g.Generate(rand.New(rand.NewSource(25)), 40)
		if err := seq.Validate(); err != nil {
			t.Fatalf("%s with m=2: %v", g.Name(), err)
		}
	}
}

// TestCycleIsFullyPredictable pins the property the hybrid planner's
// smoke test relies on: the cycle trace is deterministic (seed-free) and
// every request is the successor of the previous one modulo M.
func TestCycleIsFullyPredictable(t *testing.T) {
	seq := Cycle{M: 5, Gap: 2}.Generate(rand.New(rand.NewSource(1)), 100)
	for i, r := range seq.Requests {
		want := model.ServerID(1 + i%5)
		if r.Server != want || r.Time != float64(i+1)*2 {
			t.Fatalf("request %d = %+v, want server %d at t=%g", i, r, want, float64(i+1)*2)
		}
	}
}
