package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"datacache/internal/model"
	"datacache/internal/workload"
)

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, g := range workload.Standard(5, 1.0) {
		seq := g.Generate(rng, 50)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, seq); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if got.M != seq.M || got.Origin != seq.Origin || got.N() != seq.N() {
			t.Fatalf("%s: header mismatch", g.Name())
		}
		for i := range seq.Requests {
			if got.Requests[i] != seq.Requests[i] {
				t.Fatalf("%s: request %d: %v != %v", g.Name(), i, got.Requests[i], seq.Requests[i])
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	seq := workload.Zipf{M: 7, S: 1.3, MeanGap: 0.4}.Generate(rng, 80)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != seq.M || got.N() != seq.N() {
		t.Fatal("round trip mismatch")
	}
	for i := range seq.Requests {
		if got.Requests[i] != seq.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestReadCSVAcceptsCommentsAndBlanks(t *testing.T) {
	in := `#datacache m=3 origin=2
# free-form comment
server,time

1,0.5
3,1.25
`
	seq, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if seq.M != 3 || seq.Origin != 2 || seq.N() != 2 {
		t.Fatalf("parsed %+v", seq)
	}
	if seq.Requests[1] != (model.Request{Server: 3, Time: 1.25}) {
		t.Fatalf("request = %+v", seq.Requests[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":   "1,0.5\n",
		"bad field":        "#datacache m=2 origin=1\n1;0.5\n",
		"bad server":       "#datacache m=2 origin=1\nxx,0.5\n",
		"bad time":         "#datacache m=2 origin=1\n1,zz\n",
		"bad header field": "#datacache m=two origin=1\n",
		"unknown header":   "#datacache q=3\n",
		"header no equals": "#datacache morigin\n",
		"invalid instance": "#datacache m=2 origin=9\n1,0.5\n",
		"non-increasing":   "#datacache m=2 origin=1\n1,2\n2,1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	bad := &model.Sequence{M: 0}
	if err := WriteCSV(&buf, bad); err == nil {
		t.Error("WriteCSV accepted invalid sequence")
	}
	if err := WriteJSON(&buf, bad); err == nil {
		t.Error("WriteJSON accepted invalid sequence")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"M":0}`)); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	var s model.Schedule
	s.AddCache(1, 0, 2.5)
	s.AddCache(2, 1, 3)
	s.AddTransfer(1, 2, 1)
	var buf bytes.Buffer
	if err := WriteScheduleJSON(&buf, &s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost(model.Unit) != s.Cost(model.Unit) {
		t.Errorf("cost drift: %v vs %v", got.Cost(model.Unit), s.Cost(model.Unit))
	}
	if len(got.Caches) != 2 || len(got.Transfers) != 1 {
		t.Errorf("shape drift: %+v", got)
	}
	if _, err := ReadScheduleJSON(strings.NewReader("nope")); err == nil {
		t.Error("malformed schedule accepted")
	}
}

func TestCSVPreservesFullPrecision(t *testing.T) {
	// Times with no short decimal representation must round-trip bit-exact
	// through the 'g', -1 encoding.
	seq := &model.Sequence{M: 2, Origin: 1, Requests: []model.Request{
		{Server: 1, Time: 0.1 + 0.2}, // the classic 0.30000000000000004
		{Server: 2, Time: 1.0 / 3.0},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Requests {
		if got.Requests[i].Time != seq.Requests[i].Time {
			t.Fatalf("time %d lost precision: %v != %v", i, got.Requests[i].Time, seq.Requests[i].Time)
		}
	}
}
