package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the sequence parser: it must never
// panic, and anything it accepts must re-serialize and re-parse to the same
// instance.
func FuzzReadCSV(f *testing.F) {
	f.Add("#datacache m=3 origin=1\nserver,time\n1,0.5\n2,1.5\n")
	f.Add("#datacache m=1 origin=1\n1,1\n")
	f.Add("garbage")
	f.Add("#datacache m=0\n")
	f.Fuzz(func(t *testing.T, input string) {
		seq, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, seq); err != nil {
			t.Fatalf("accepted instance fails to serialize: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized form fails to parse: %v", err)
		}
		if again.M != seq.M || again.Origin != seq.Origin || again.N() != seq.N() {
			t.Fatalf("round trip drift: %+v vs %+v", seq, again)
		}
		for i := range seq.Requests {
			if seq.Requests[i] != again.Requests[i] {
				t.Fatalf("request %d drift", i)
			}
		}
	})
}

// FuzzReadEventsCSV does the same for the item-tagged event parser.
func FuzzReadEventsCSV(f *testing.F) {
	f.Add("#datacache-events m=2\nitem,server,time\na,1,0.5\nb,2,0.7\n")
	f.Add("#datacache-events m=9\nx,9,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		m, events, err := ReadEventsCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted streams serialize back only when ordered and separator
		// free; mismatches there are fine — the invariant under fuzz is
		// just "no panic, sane header".
		if m < 1 {
			t.Fatalf("accepted stream with m=%d", m)
		}
		_ = events
	})
}

// FuzzReadJSON guards the JSON path.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"M":2,"Origin":1,"Requests":[{"Server":1,"Time":1}]}`)
	f.Add(`{"M":0}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		seq, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := seq.Validate(); err != nil {
			t.Fatalf("ReadJSON returned an invalid sequence: %v", err)
		}
	})
}
