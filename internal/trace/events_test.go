package trace

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"datacache/internal/model"
	"datacache/internal/multi"
	"datacache/internal/workload"
)

func randomEvents(t *testing.T, n int) (int, []multi.Event) {
	t.Helper()
	rng := rand.New(rand.NewSource(257))
	names := []string{"alpha", "beta", "gamma"}
	var events []multi.Event
	for k, name := range names {
		seq := workload.Uniform{M: 5, MeanGap: 0.5}.Generate(rng, n)
		for _, r := range seq.Requests {
			events = append(events, multi.Event{
				Item: name, Server: r.Server, Time: r.Time + float64(k)*1e-7,
			})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	return 5, events
}

func TestEventsCSVRoundTrip(t *testing.T) {
	m, events := randomEvents(t, 40)
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, m, events); err != nil {
		t.Fatal(err)
	}
	gotM, got, err := ReadEventsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotM != m || len(got) != len(events) {
		t.Fatalf("round trip shape: m=%d n=%d", gotM, len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	// And the round-tripped stream demultiplexes cleanly.
	cat := &multi.Catalog{M: gotM, Default: model.Unit}
	if _, _, err := multi.Demultiplex(cat, got); err != nil {
		t.Fatal(err)
	}
}

func TestEventsCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, 0, nil); err == nil {
		t.Error("m=0 accepted")
	}
	if err := WriteEventsCSV(&buf, 2, []multi.Event{{Item: "a,b", Server: 1, Time: 1}}); err == nil {
		t.Error("separator in item name accepted")
	}
	if err := WriteEventsCSV(&buf, 2, []multi.Event{
		{Item: "a", Server: 1, Time: 2},
		{Item: "b", Server: 1, Time: 1},
	}); err == nil {
		t.Error("out-of-order stream accepted")
	}
	bad := map[string]string{
		"missing header": "a,1,0.5\n",
		"bad field":      "#datacache-events m=2\na;1;0.5\n",
		"bad server":     "#datacache-events m=2\na,x,0.5\n",
		"bad time":       "#datacache-events m=2\na,1,z\n",
		"bad header":     "#datacache-events q=2\n",
	}
	for name, in := range bad {
		if _, _, err := ReadEventsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestEventsCSVCommentsAndBlanks(t *testing.T) {
	in := `#datacache-events m=3
# a comment
item,server,time

x,1,0.5
y,2,0.7
`
	m, events, err := ReadEventsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 || len(events) != 2 || events[1].Item != "y" {
		t.Fatalf("parsed m=%d events=%+v", m, events)
	}
}
