package trace

import (
	"bytes"
	"strings"
	"testing"

	"datacache/internal/model"
)

// TestSequenceFormatDispatch round-trips a sequence through every
// registered format via the canonical WriteSequence/ReadSequence
// helpers and rejects unknown names.
func TestSequenceFormatDispatch(t *testing.T) {
	seq := &model.Sequence{M: 3, Origin: 1, Requests: []model.Request{
		{Server: 2, Time: 0.5},
		{Server: 3, Time: 1.25},
		{Server: 1, Time: 2},
	}}
	for _, format := range Formats() {
		if !ValidFormat(format) {
			t.Errorf("Formats() lists %q but ValidFormat rejects it", format)
		}
		var buf bytes.Buffer
		if err := WriteSequence(&buf, format, seq); err != nil {
			t.Fatalf("WriteSequence(%q): %v", format, err)
		}
		got, err := ReadSequence(&buf, strings.ToUpper(format)) // case-insensitive
		if err != nil {
			t.Fatalf("ReadSequence(%q): %v", format, err)
		}
		if got.M != seq.M || got.Origin != seq.Origin || len(got.Requests) != len(seq.Requests) {
			t.Fatalf("%s round trip: got m=%d origin=%d n=%d", format, got.M, got.Origin, len(got.Requests))
		}
		for i, r := range got.Requests {
			if r != seq.Requests[i] {
				t.Fatalf("%s round trip request %d: got %+v want %+v", format, i, r, seq.Requests[i])
			}
		}
	}

	// "" is the CSV default.
	if !ValidFormat("") {
		t.Error(`ValidFormat("") = false, want the CSV default`)
	}
	var buf bytes.Buffer
	if err := WriteSequence(&buf, "", seq); err != nil {
		t.Fatalf(`WriteSequence(""): %v`, err)
	}
	if !strings.HasPrefix(buf.String(), "#datacache") {
		t.Errorf(`WriteSequence("") did not produce CSV: %q`, buf.String()[:20])
	}

	if err := WriteSequence(&buf, "yaml", seq); err == nil {
		t.Error("WriteSequence(yaml) accepted an unknown format")
	}
	if _, err := ReadSequence(&buf, "yaml"); err == nil {
		t.Error("ReadSequence(yaml) accepted an unknown format")
	}
}
