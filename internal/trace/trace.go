// Package trace reads and writes request sequences so that workloads can be
// generated once, inspected, and replayed across the CLIs. Two formats are
// supported: a line-oriented CSV (header carries the instance parameters,
// one "server,time" row per request) and JSON (the model.Sequence struct
// verbatim).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"datacache/internal/model"
)

// WriteCSV writes a sequence in the CSV trace format:
//
//	#datacache m=<m> origin=<origin>
//	server,time
//	2,0.5
//	...
func WriteCSV(w io.Writer, seq *model.Sequence) error {
	if err := seq.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#datacache m=%d origin=%d\n", seq.M, seq.Origin)
	fmt.Fprintln(bw, "server,time")
	for _, r := range seq.Requests {
		fmt.Fprintf(bw, "%d,%s\n", r.Server, strconv.FormatFloat(r.Time, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadCSV parses the CSV trace format and validates the result.
func ReadCSV(r io.Reader) (*model.Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	seq := &model.Sequence{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "server,time":
			continue
		case strings.HasPrefix(line, "#datacache"):
			if err := parseHeader(line, seq); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "#"):
			continue // comment
		default:
			parts := strings.SplitN(line, ",", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("trace: line %d: want server,time, got %q", lineNo, line)
			}
			sv, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad server: %w", lineNo, err)
			}
			tm, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad time: %w", lineNo, err)
			}
			seq.Requests = append(seq.Requests, model.Request{Server: model.ServerID(sv), Time: tm})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if seq.M == 0 {
		return nil, fmt.Errorf("trace: missing #datacache header")
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	return seq, nil
}

func parseHeader(line string, seq *model.Sequence) error {
	for _, field := range strings.Fields(line)[1:] {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad header field %q", field)
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			return fmt.Errorf("bad header value %q: %w", field, err)
		}
		switch kv[0] {
		case "m":
			seq.M = v
		case "origin":
			seq.Origin = model.ServerID(v)
		default:
			return fmt.Errorf("unknown header field %q", kv[0])
		}
	}
	return nil
}

// WriteJSON writes a sequence as JSON.
func WriteJSON(w io.Writer, seq *model.Sequence) error {
	if err := seq.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(seq)
}

// ReadJSON parses a JSON sequence and validates it.
func ReadJSON(r io.Reader) (*model.Sequence, error) {
	var seq model.Sequence
	if err := json.NewDecoder(r).Decode(&seq); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	return &seq, nil
}

// WriteScheduleJSON writes a schedule as JSON (normalized first, so the
// output prices each cached second once).
func WriteScheduleJSON(w io.Writer, s *model.Schedule) error {
	norm := &model.Schedule{
		Caches:    append([]model.CacheInterval(nil), s.Caches...),
		Transfers: append([]model.Transfer(nil), s.Transfers...),
	}
	norm.Normalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(norm)
}

// ReadScheduleJSON parses a schedule. Feasibility against a particular
// instance is the caller's concern (model.Schedule.Validate); the parse
// only normalizes.
func ReadScheduleJSON(r io.Reader) (*model.Schedule, error) {
	var s model.Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	s.Normalize()
	return &s, nil
}
