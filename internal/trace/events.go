package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"datacache/internal/model"
	"datacache/internal/multi"
)

// WriteEventsCSV writes an item-tagged event stream:
//
//	#datacache-events m=<m>
//	item,server,time
//	profile-42,2,0.5
//	...
//
// The stream must be time-ordered (multi.Demultiplex validates per-item
// monotonicity on read).
func WriteEventsCSV(w io.Writer, m int, events []multi.Event) error {
	if m < 1 {
		return fmt.Errorf("trace: events header needs m >= 1, got %d", m)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#datacache-events m=%d\n", m)
	fmt.Fprintln(bw, "item,server,time")
	last := 0.0
	for i, e := range events {
		if strings.ContainsAny(e.Item, ",\n") {
			return fmt.Errorf("trace: item name %q contains a separator", e.Item)
		}
		if i > 0 && e.Time < last {
			return fmt.Errorf("trace: event %d out of order", i)
		}
		last = e.Time
		fmt.Fprintf(bw, "%s,%d,%s\n", e.Item, e.Server, strconv.FormatFloat(e.Time, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadEventsCSV parses the item-tagged event format, returning the cluster
// size and the time-ordered stream.
func ReadEventsCSV(r io.Reader) (m int, events []multi.Event, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "item,server,time":
			continue
		case strings.HasPrefix(line, "#datacache-events"):
			for _, field := range strings.Fields(line)[1:] {
				kv := strings.SplitN(field, "=", 2)
				if len(kv) != 2 || kv[0] != "m" {
					return 0, nil, fmt.Errorf("trace: line %d: bad header field %q", lineNo, field)
				}
				if m, err = strconv.Atoi(kv[1]); err != nil {
					return 0, nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
				}
			}
		case strings.HasPrefix(line, "#"):
			continue
		default:
			parts := strings.SplitN(line, ",", 3)
			if len(parts) != 3 {
				return 0, nil, fmt.Errorf("trace: line %d: want item,server,time, got %q", lineNo, line)
			}
			sv, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return 0, nil, fmt.Errorf("trace: line %d: bad server: %w", lineNo, err)
			}
			tm, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return 0, nil, fmt.Errorf("trace: line %d: bad time: %w", lineNo, err)
			}
			events = append(events, multi.Event{
				Item:   strings.TrimSpace(parts[0]),
				Server: model.ServerID(sv),
				Time:   tm,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("trace: %w", err)
	}
	if m == 0 {
		return 0, nil, fmt.Errorf("trace: missing #datacache-events header")
	}
	return m, events, nil
}
