package trace

import (
	"fmt"
	"io"
	"strings"

	"datacache/internal/model"
)

// Canonical sequence-format dispatch. Every CLI that reads or writes a
// workload stream (dcgen, dcsim, dcopt, dcreplay's trace export) goes
// through WriteSequence/ReadSequence instead of switching on the format
// name itself, so the set of formats and their spellings live in exactly
// one place.
const (
	FormatCSV  = "csv"
	FormatJSON = "json"
)

// Formats lists the supported sequence serializations.
func Formats() []string { return []string{FormatCSV, FormatJSON} }

// ValidFormat reports whether format names a known sequence
// serialization ("" selects the CSV default).
func ValidFormat(format string) bool {
	switch normalizeFormat(format) {
	case FormatCSV, FormatJSON:
		return true
	}
	return false
}

func normalizeFormat(format string) string {
	if format == "" {
		return FormatCSV
	}
	return strings.ToLower(format)
}

// WriteSequence writes a sequence in the named format.
func WriteSequence(w io.Writer, format string, seq *model.Sequence) error {
	switch normalizeFormat(format) {
	case FormatCSV:
		return WriteCSV(w, seq)
	case FormatJSON:
		return WriteJSON(w, seq)
	}
	return fmt.Errorf("trace: unknown format %q (want one of %s)", format, strings.Join(Formats(), ", "))
}

// ReadSequence parses a sequence in the named format.
func ReadSequence(r io.Reader, format string) (*model.Sequence, error) {
	switch normalizeFormat(format) {
	case FormatCSV:
		return ReadCSV(r)
	case FormatJSON:
		return ReadJSON(r)
	}
	return nil, fmt.Errorf("trace: unknown format %q (want one of %s)", format, strings.Join(Formats(), ", "))
}
