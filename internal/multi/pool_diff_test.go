package multi_test

import (
	"math"
	"math/rand"
	"testing"

	"datacache"
	"datacache/internal/model"
	"datacache/internal/multi"
	"datacache/internal/online"
)

// TestPoolAgreesWithOfflineBaseline is the differential test between the
// two multi-item paths: internal/multi (the offline baseline — trace
// demultiplexed whole, each item planned and served as a complete
// sequence) and datacache.Pool (the live path — engines instantiated
// lazily per key, fed request by request). Both sit on the same
// internal/engine decider, so on a shared merged stream the pool's
// per-item costs must match multi.Serve and its per-item optima must
// match multi.Plan, item by item and in total.
func TestPoolAgreesWithOfflineBaseline(t *testing.T) {
	const (
		m     = 5
		n     = 400
		items = 6
	)
	cm := model.CostModel{Mu: 1, Lambda: 2}
	rng := rand.New(rand.NewSource(42))
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	events := make([]multi.Event, n)
	for i := range events {
		events[i] = multi.Event{
			Item:   names[rng.Intn(items)],
			Server: model.ServerID(1 + rng.Intn(m)),
			Time:   float64(i+1) * 0.25,
		}
	}
	cat := &multi.Catalog{M: m, Default: cm}

	serveReports, serveTotal, err := multi.Serve(cat, events, func() online.Runner {
		return online.SpeculativeCaching{}
	})
	if err != nil {
		t.Fatal(err)
	}
	planReports, planTotal, err := multi.Plan(cat, events, 0)
	if err != nil {
		t.Fatal(err)
	}

	pool, err := datacache.NewPool(m, 1, datacache.CostModel(cm), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if _, err := pool.Serve("", e.Item, datacache.ServerID(e.Server), e.Time); err != nil {
			t.Fatalf("pool serve %v: %v", e, err)
		}
	}

	byItem := map[string]datacache.ItemStats{}
	for _, st := range pool.AllItems() {
		byItem[st.Item] = st
	}
	if len(byItem) != len(serveReports) {
		t.Fatalf("pool tracks %d items, baseline served %d", len(byItem), len(serveReports))
	}
	for i, sr := range serveReports {
		st, ok := byItem[sr.Item]
		if !ok {
			t.Fatalf("item %q missing from the pool", sr.Item)
		}
		if st.N != sr.Stats.Requests {
			t.Errorf("item %q: pool n=%d, baseline %d", sr.Item, st.N, sr.Stats.Requests)
		}
		if math.Abs(st.Cost-sr.Stats.Cost) > 1e-9 {
			t.Errorf("item %q: pool cost %v != multi.Serve cost %v", sr.Item, st.Cost, sr.Stats.Cost)
		}
		pr := planReports[i]
		if pr.Item != sr.Item {
			t.Fatalf("report order mismatch: %q vs %q", pr.Item, sr.Item)
		}
		if math.Abs(st.Optimal-pr.Cost) > 1e-9 {
			t.Errorf("item %q: pool optimum %v != multi.Plan cost %v", sr.Item, st.Optimal, pr.Cost)
		}
	}
	if math.Abs(pool.Cost()-serveTotal) > 1e-9 {
		t.Errorf("pool total %v != baseline serve total %v", pool.Cost(), serveTotal)
	}
	if math.Abs(pool.Optimal()-planTotal) > 1e-9 {
		t.Errorf("pool optimum %v != baseline plan total %v", pool.Optimal(), planTotal)
	}
	// The composed Theorem-3 guarantee must hold on both accountings.
	if !multi.CompetitiveGuarantee(planTotal, serveTotal, 3) {
		t.Errorf("baseline violates the composed 3-competitive bound: %v vs %v", serveTotal, planTotal)
	}
	if !multi.CompetitiveGuarantee(pool.Optimal(), pool.Cost(), 3) {
		t.Errorf("pool violates the composed 3-competitive bound: %v vs %v", pool.Cost(), pool.Optimal())
	}
}
