package multi

import (
	"fmt"
	"math/rand"
	"sort"

	"datacache/internal/workload"
)

// ItemLoad pairs an item name with the workload generating its requests.
type ItemLoad struct {
	Item string
	Gen  workload.Generator
	N    int
}

// GenerateEvents synthesizes a merged, item-tagged event stream from
// per-item workload generators — the input format dcplan consumes. Each
// item draws from its own seeded sub-stream; coincident timestamps across
// items are separated by a deterministic per-item jitter so the per-item
// sequences stay strictly increasing after demultiplexing.
func GenerateEvents(m int, loads []ItemLoad, seed int64) ([]Event, error) {
	if m < 1 {
		return nil, fmt.Errorf("multi: need m >= 1")
	}
	var events []Event
	for k, ld := range loads {
		if ld.Item == "" {
			return nil, fmt.Errorf("multi: load %d has no item name", k)
		}
		if ld.Gen == nil {
			return nil, fmt.Errorf("multi: item %q has no generator", ld.Item)
		}
		seq := ld.Gen.Generate(rand.New(rand.NewSource(seed+int64(k))), ld.N)
		if seq.M != m {
			return nil, fmt.Errorf("multi: item %q generator targets m=%d, catalog has m=%d", ld.Item, seq.M, m)
		}
		jitter := float64(k+1) * 1e-9
		for _, r := range seq.Requests {
			events = append(events, Event{Item: ld.Item, Server: r.Server, Time: r.Time + jitter})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	return events, nil
}
