package multi

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/workload"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

// mergedStream interleaves several generated per-item sequences into one
// time-ordered tagged event stream.
func mergedStream(rng *rand.Rand, c *Catalog, names []string, nPerItem int) []Event {
	var events []Event
	for k, name := range names {
		seq := workload.MarkovHop{M: c.M, Stay: 0.7, MeanGap: 0.5}.Generate(rng, nPerItem)
		for _, r := range seq.Requests {
			// Deterministic per-item jitter keeps per-item times distinct
			// after merging.
			events = append(events, Event{Item: name, Server: r.Server, Time: r.Time + float64(k)*1e-7})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	return events
}

func testCatalog() *Catalog {
	return &Catalog{
		M:       5,
		Default: model.Unit,
		Items: map[string]ItemSpec{
			"hot":  {Model: model.CostModel{Mu: 1, Lambda: 4}, Origin: 2},
			"cold": {Model: model.CostModel{Mu: 3, Lambda: 1}},
		},
	}
}

func TestDemultiplexSplitsAndValidates(t *testing.T) {
	c := testCatalog()
	events := []Event{
		{Item: "hot", Server: 1, Time: 1},
		{Item: "cold", Server: 2, Time: 1}, // same instant, different item: fine
		{Item: "hot", Server: 3, Time: 2},
	}
	perItem, names, err := Demultiplex(c, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "cold" || names[1] != "hot" {
		t.Fatalf("names = %v", names)
	}
	if perItem["hot"].N() != 2 || perItem["cold"].N() != 1 {
		t.Fatalf("split sizes wrong: %d/%d", perItem["hot"].N(), perItem["cold"].N())
	}
	if perItem["hot"].Origin != 2 {
		t.Errorf("hot origin = %d, want the spec'd 2", perItem["hot"].Origin)
	}
	if perItem["cold"].Origin != 1 {
		t.Errorf("cold origin = %d, want default 1", perItem["cold"].Origin)
	}
}

func TestDemultiplexErrors(t *testing.T) {
	c := testCatalog()
	if _, _, err := Demultiplex(&Catalog{M: 0}, nil); err == nil {
		t.Error("invalid catalog accepted")
	}
	if _, _, err := Demultiplex(c, []Event{
		{Item: "a", Server: 1, Time: 2},
		{Item: "b", Server: 1, Time: 1},
	}); err == nil {
		t.Error("out-of-order stream accepted")
	}
	if _, _, err := Demultiplex(c, []Event{
		{Item: "a", Server: 1, Time: 2},
		{Item: "a", Server: 2, Time: 2},
	}); err == nil {
		t.Error("coinciding same-item times accepted")
	}
	if _, _, err := Demultiplex(c, []Event{{Item: "a", Server: 99, Time: 1}}); err == nil {
		t.Error("out-of-range server accepted")
	}
}

func TestPlanMatchesPerItemOptimization(t *testing.T) {
	c := testCatalog()
	rng := rand.New(rand.NewSource(89))
	events := mergedStream(rng, c, []string{"hot", "cold", "misc"}, 40)
	reports, total, err := Plan(c, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	perItem, _, err := Demultiplex(c, events)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, rep := range reports {
		want, err := offline.FastDP(perItem[rep.Item], c.spec(rep.Item).Model)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(rep.Cost, want.Cost()) {
			t.Errorf("item %q: plan %v != direct %v", rep.Item, rep.Cost, want.Cost())
		}
		if err := rep.Schedule.Validate(perItem[rep.Item]); err != nil {
			t.Errorf("item %q: %v", rep.Item, err)
		}
		sum += rep.Cost
	}
	if !approxEq(total, sum) {
		t.Errorf("total %v != sum %v", total, sum)
	}
}

func TestServePerItemIsolationAndGuarantee(t *testing.T) {
	c := testCatalog()
	rng := rand.New(rand.NewSource(97))
	events := mergedStream(rng, c, []string{"hot", "cold", "misc", "x"}, 30)
	_, planTotal, err := Plan(c, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	reports, serveTotal, err := Serve(c, events, func() online.Runner {
		return online.SpeculativeCaching{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	if serveTotal < planTotal {
		t.Errorf("online total %v below offline optimum %v", serveTotal, planTotal)
	}
	if !CompetitiveGuarantee(planTotal, serveTotal, 3) {
		t.Errorf("catalog bill %v breaks the composed 3x bound of optimum %v", serveTotal, planTotal)
	}
	if CompetitiveGuarantee(planTotal, serveTotal, serveTotal/planTotal-0.01) {
		t.Error("CompetitiveGuarantee accepted a bound below the actual ratio")
	}
}

func TestPlanPropagatesItemFailure(t *testing.T) {
	c := testCatalog()
	// Bad cost model for one item.
	c.Items["broken"] = ItemSpec{Model: model.CostModel{Mu: -1, Lambda: 1}}
	events := []Event{
		{Item: "broken", Server: 1, Time: 1},
		{Item: "hot", Server: 1, Time: 2},
	}
	if _, _, err := Plan(c, events, 2); err == nil {
		t.Error("broken item's failure not propagated")
	}
	if _, _, err := Serve(c, events, func() online.Runner { return online.SpeculativeCaching{} }); err == nil {
		t.Error("broken item's failure not propagated by Serve")
	}
}

func TestGenerateEvents(t *testing.T) {
	loads := []ItemLoad{
		{Item: "a", Gen: workload.Uniform{M: 4, MeanGap: 0.5}, N: 30},
		{Item: "b", Gen: workload.Zipf{M: 4, S: 1.5, MeanGap: 0.8}, N: 20},
	}
	events, err := GenerateEvents(4, loads, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 50 {
		t.Fatalf("events = %d, want 50", len(events))
	}
	cat := &Catalog{M: 4, Default: model.Unit}
	perItem, names, err := Demultiplex(cat, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || perItem["a"].N() != 30 || perItem["b"].N() != 20 {
		t.Fatalf("split = %v (%d/%d)", names, perItem["a"].N(), perItem["b"].N())
	}
	// Deterministic per seed.
	again, err := GenerateEvents(4, loads, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if events[i] != again[i] {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
}

func TestGenerateEventsErrors(t *testing.T) {
	good := ItemLoad{Item: "a", Gen: workload.Uniform{M: 2, MeanGap: 1}, N: 5}
	if _, err := GenerateEvents(0, []ItemLoad{good}, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := GenerateEvents(2, []ItemLoad{{Gen: good.Gen, N: 5}}, 1); err == nil {
		t.Error("unnamed item accepted")
	}
	if _, err := GenerateEvents(2, []ItemLoad{{Item: "a", N: 5}}, 1); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := GenerateEvents(3, []ItemLoad{good}, 1); err == nil {
		t.Error("m mismatch accepted")
	}
}

func TestEmptyStream(t *testing.T) {
	c := testCatalog()
	reports, total, err := Plan(c, nil, 2)
	if err != nil || total != 0 || len(reports) != 0 {
		t.Errorf("empty plan = (%v, %v, %v)", reports, total, err)
	}
}
