// Package multi plans caching for a whole catalog of shared data items. The
// paper treats one item; real data services host many, and under the
// homogeneous cost model items are independent — the catalog optimum is the
// sum of per-item optima, and the online guarantee composes (each item's SC
// run is 3-competitive, so the catalog bill is too). The package provides
// the event-stream plumbing (tagged traces, demultiplexing), a parallel
// catalog planner built on offline.OptimizeBatch, and an online catalog
// server running one SC instance per item.
//
// multi is the OFFLINE multi-item baseline: it demultiplexes a complete
// trace up front and plans/serves each item's sequence whole. Its live
// counterpart is datacache.Pool, which instantiates the same canonical
// engine per (tenant, item) key lazily, request by request, with bounded
// state. Both are built on internal/engine deciders, so on a shared
// request sequence the pool's per-item costs must equal multi's —
// pool_diff_test.go pins that agreement.
package multi

import (
	"fmt"
	"sort"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
)

// Event is one request in a merged, item-tagged stream.
type Event struct {
	Item   string
	Server model.ServerID
	Time   float64
}

// Catalog describes the hosted items: per-item cost models and origins.
// Items absent from the map use Default.
type Catalog struct {
	M       int
	Default model.CostModel
	Items   map[string]ItemSpec
}

// ItemSpec overrides per-item parameters.
type ItemSpec struct {
	Model  model.CostModel
	Origin model.ServerID // 0 means server 1
}

// spec resolves an item's parameters.
func (c *Catalog) spec(item string) ItemSpec {
	s, ok := c.Items[item]
	if !ok {
		s = ItemSpec{}
	}
	if s.Model == (model.CostModel{}) {
		s.Model = c.Default
	}
	if s.Origin == 0 {
		s.Origin = 1
	}
	return s
}

// Demultiplex splits a merged event stream into per-item sequences. Events
// must be time-ordered overall (and therefore per item); item names are
// returned sorted for determinism.
func Demultiplex(c *Catalog, events []Event) (map[string]*model.Sequence, []string, error) {
	if c.M < 1 {
		return nil, nil, fmt.Errorf("multi: catalog has m=%d servers", c.M)
	}
	perItem := map[string]*model.Sequence{}
	prev := map[string]float64{}
	last := 0.0
	for i, e := range events {
		// The merged stream must be time-ordered; equal instants are fine
		// across items (items are independent), never within one item.
		if i > 0 && e.Time < last {
			return nil, nil, fmt.Errorf("multi: event %d at t=%v out of order (previous %v)", i, e.Time, last)
		}
		last = e.Time
		seq := perItem[e.Item]
		if seq == nil {
			sp := c.spec(e.Item)
			seq = &model.Sequence{M: c.M, Origin: sp.Origin}
			perItem[e.Item] = seq
		}
		if e.Time <= prev[e.Item] {
			return nil, nil, fmt.Errorf("multi: item %q has coinciding request times at t=%v", e.Item, e.Time)
		}
		prev[e.Item] = e.Time
		seq.Requests = append(seq.Requests, model.Request{Server: e.Server, Time: e.Time})
	}
	names := make([]string, 0, len(perItem))
	for name := range perItem {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := perItem[name].Validate(); err != nil {
			return nil, nil, fmt.Errorf("multi: item %q: %w", name, err)
		}
	}
	return perItem, names, nil
}

// PlanReport is the outcome of planning one item.
type PlanReport struct {
	Item     string
	Requests int
	Cost     float64
	Schedule *model.Schedule
}

// Plan optimizes every item of a merged stream off-line in parallel and
// returns per-item reports (sorted by item name) plus the catalog total.
func Plan(c *Catalog, events []Event, workers int) ([]PlanReport, float64, error) {
	perItem, names, err := Demultiplex(c, events)
	if err != nil {
		return nil, 0, err
	}
	items := make([]offline.BatchItem, len(names))
	for i, name := range names {
		items[i] = offline.BatchItem{Name: name, Seq: perItem[name], Model: c.spec(name).Model}
	}
	results := offline.OptimizeBatch(items, workers)
	reports := make([]PlanReport, len(names))
	total := 0.0
	for i, r := range results {
		if r.Err != nil {
			return nil, 0, r.Err
		}
		sched, err := r.Res.Schedule()
		if err != nil {
			return nil, 0, fmt.Errorf("multi: item %q: %w", r.Name, err)
		}
		reports[i] = PlanReport{Item: r.Name, Requests: perItem[r.Name].N(), Cost: r.Cost, Schedule: sched}
		total += r.Cost
	}
	return reports, total, nil
}

// ServeReport is the outcome of serving one item online.
type ServeReport struct {
	Item  string
	Stats online.Stats
}

// Serve runs an online policy per item over the merged stream and returns
// per-item statistics plus the catalog total cost. The policy constructor
// is invoked once per item, so stateful policies stay isolated.
func Serve(c *Catalog, events []Event, policy func() online.Runner) ([]ServeReport, float64, error) {
	perItem, names, err := Demultiplex(c, events)
	if err != nil {
		return nil, 0, err
	}
	reports := make([]ServeReport, len(names))
	total := 0.0
	for i, name := range names {
		res, err := online.Run(policy(), perItem[name], c.spec(name).Model)
		if err != nil {
			return nil, 0, fmt.Errorf("multi: item %q: %w", name, err)
		}
		reports[i] = ServeReport{Item: name, Stats: res.Stats}
		total += res.Stats.Cost
	}
	return reports, total, nil
}

// CompetitiveGuarantee states the composed bound: if every per-item policy
// is c-competitive, the catalog bill is c-competitive against the catalog
// optimum. It is exported as a checked fact: given matched plan and serve
// totals it reports whether the bound holds.
func CompetitiveGuarantee(planTotal, serveTotal, c float64) bool {
	return serveTotal <= c*planTotal+1e-9
}
