package paging

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBeladyTextbookExample(t *testing.T) {
	// A classic trace: Belady with k=3 faults 7 times.
	refs := []Page{7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2}
	got, err := Belady(refs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("Belady faults = %d, want 7", got)
	}
}

func TestLRUTextbookExample(t *testing.T) {
	refs := []Page{7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2}
	got, err := LRU(refs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("LRU faults = %d, want 9", got)
	}
}

func TestFIFOBeladyAnomalyTrace(t *testing.T) {
	// The canonical Belady-anomaly trace: FIFO faults 9 times at k=3 and 10
	// times at k=4 — more cache, more faults.
	refs := []Page{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	f3, err := FIFO(refs, 3)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := FIFO(refs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f3 != 9 || f4 != 10 {
		t.Errorf("FIFO faults = (%d, %d), want (9, 10)", f3, f4)
	}
}

func TestInvalidCacheSizes(t *testing.T) {
	refs := []Page{1, 2}
	if _, err := Belady(refs, 0); err == nil {
		t.Error("Belady accepted k=0")
	}
	if _, err := LRU(refs, 0); err == nil {
		t.Error("LRU accepted k=0")
	}
	if _, err := FIFO(refs, -1); err == nil {
		t.Error("FIFO accepted k=-1")
	}
}

func TestEmptyAndTinyTraces(t *testing.T) {
	for _, f := range []func([]Page, int) (int, error){Belady, LRU, FIFO} {
		if got, err := f(nil, 2); err != nil || got != 0 {
			t.Errorf("empty trace: (%d, %v)", got, err)
		}
		if got, err := f([]Page{5}, 2); err != nil || got != 1 {
			t.Errorf("single ref: (%d, %v), want 1 fault", got, err)
		}
		if got, err := f([]Page{5, 5, 5}, 1); err != nil || got != 1 {
			t.Errorf("repeated ref: (%d, %v), want 1 fault", got, err)
		}
	}
}

func TestBeladyNeverWorseThanOnlinePolicies(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := 1 + int(kRaw%8)
		refs := make([]Page, len(raw))
		for i, v := range raw {
			refs[i] = Page(v % 12)
		}
		opt, err := Belady(refs, k)
		if err != nil {
			return false
		}
		lru, err := LRU(refs, k)
		if err != nil {
			return false
		}
		fifo, err := FIFO(refs, k)
		if err != nil {
			return false
		}
		distinct := map[Page]bool{}
		for _, p := range refs {
			distinct[p] = true
		}
		// Every first touch faults, so compulsory misses lower-bound all
		// policies; Belady lower-bounds the online ones.
		return opt <= lru && opt <= fifo && opt >= len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicAdversaryExhibitsKGap(t *testing.T) {
	k, n := 5, 600
	refs := CyclicAdversary(k, n)
	lru, err := LRU(refs, k)
	if err != nil {
		t.Fatal(err)
	}
	if lru != n {
		t.Errorf("LRU on the cyclic adversary faults %d of %d, want every access", lru, n)
	}
	r, err := Ratio(LRU, refs, k)
	if err != nil {
		t.Fatal(err)
	}
	// The competitive gap approaches k on this trace.
	if r < float64(k)-1 {
		t.Errorf("LRU/Belady ratio = %v, want ≈k = %d", r, k)
	}
	if r > float64(k)+1 {
		t.Errorf("LRU/Belady ratio = %v implausibly above k = %d", r, k)
	}
}

func TestRatioDegenerateCases(t *testing.T) {
	// Everything fits: both policies only take compulsory misses.
	refs := []Page{1, 2, 1, 2, 1}
	r, err := Ratio(LRU, refs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("ratio = %v, want 1", r)
	}
}

func TestLRUBeatsFIFOOnLocalTraces(t *testing.T) {
	// Strong temporal locality favors LRU over FIFO on average.
	rng := rand.New(rand.NewSource(41))
	better, worse := 0, 0
	for trial := 0; trial < 50; trial++ {
		var refs []Page
		cur := Page(0)
		for i := 0; i < 400; i++ {
			if rng.Float64() < 0.7 {
				// revisit a recent page
				cur = Page(int(cur) + rng.Intn(3) - 1)
				if cur < 0 {
					cur = 0
				}
			} else {
				cur = Page(rng.Intn(30))
			}
			refs = append(refs, cur)
		}
		lru, _ := LRU(refs, 6)
		fifo, _ := FIFO(refs, 6)
		if lru < fifo {
			better++
		} else if lru > fifo {
			worse++
		}
	}
	if better <= worse {
		t.Errorf("LRU better on %d traces, worse on %d; expected LRU to dominate", better, worse)
	}
}
