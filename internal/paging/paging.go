// Package paging implements the classic capacity-oriented caching problem —
// the left column of the paper's Table I — so the comparison between the two
// paradigms can be measured rather than merely asserted: Belady's off-line
// MIN algorithm [5] against the k-competitive online policies (LRU, FIFO)
// of Sleator and Tarjan [16], counting page faults on a fixed-size cache.
//
// The contrast with the cloud data caching problem is the point: there the
// off-line optimum needs the O(mn) dynamic program of Section IV and the
// online bound is a constant 3; here the off-line optimum is a greedy
// farthest-in-future eviction and the online bound grows with the cache
// size k.
package paging

import (
	"fmt"
)

// Page identifies a page (or data item) in a reference string.
type Page int

// Belady counts the faults of the optimal off-line policy on a cache of
// size k: evict the page whose next use lies farthest in the future.
func Belady(refs []Page, k int) (faults int, err error) {
	if k < 1 {
		return 0, fmt.Errorf("paging: cache size %d must be positive", k)
	}
	// nextUse[i] = index of the next reference to refs[i] after i, or
	// len(refs) when never used again.
	next := make([]int, len(refs))
	last := map[Page]int{}
	for i := len(refs) - 1; i >= 0; i-- {
		if j, ok := last[refs[i]]; ok {
			next[i] = j
		} else {
			next[i] = len(refs)
		}
		last[refs[i]] = i
	}
	inCache := map[Page]int{} // page -> its next use index
	for i, p := range refs {
		if _, ok := inCache[p]; ok {
			inCache[p] = next[i]
			continue
		}
		faults++
		if len(inCache) >= k {
			var victim Page
			farthest := -1
			for q, nu := range inCache {
				if nu > farthest || (nu == farthest && q < victim) {
					victim, farthest = q, nu
				}
			}
			delete(inCache, victim)
		}
		inCache[p] = next[i]
	}
	return faults, nil
}

// LRU counts the faults of least-recently-used eviction on a cache of
// size k.
func LRU(refs []Page, k int) (faults int, err error) {
	if k < 1 {
		return 0, fmt.Errorf("paging: cache size %d must be positive", k)
	}
	lastUse := map[Page]int{}
	for i, p := range refs {
		if _, ok := lastUse[p]; !ok {
			faults++
			if len(lastUse) >= k {
				var victim Page
				oldest := i + 1
				for q, lu := range lastUse {
					if lu < oldest || (lu == oldest && q < victim) {
						victim, oldest = q, lu
					}
				}
				delete(lastUse, victim)
			}
		}
		lastUse[p] = i
	}
	return faults, nil
}

// FIFO counts the faults of first-in-first-out eviction on a cache of
// size k.
func FIFO(refs []Page, k int) (faults int, err error) {
	if k < 1 {
		return 0, fmt.Errorf("paging: cache size %d must be positive", k)
	}
	inCache := map[Page]bool{}
	var queue []Page
	for _, p := range refs {
		if inCache[p] {
			continue
		}
		faults++
		if len(queue) >= k {
			victim := queue[0]
			queue = queue[1:]
			delete(inCache, victim)
		}
		queue = append(queue, p)
		inCache[p] = true
	}
	return faults, nil
}

// Ratio returns the fault ratio of an online policy against Belady on the
// same reference string and cache size (1 when both fault equally or the
// optimum never faults with faults matching).
func Ratio(online func([]Page, int) (int, error), refs []Page, k int) (float64, error) {
	on, err := online(refs, k)
	if err != nil {
		return 0, err
	}
	opt, err := Belady(refs, k)
	if err != nil {
		return 0, err
	}
	if opt == 0 {
		if on == 0 {
			return 1, nil
		}
		return float64(on), nil
	}
	return float64(on) / float64(opt), nil
}

// CyclicAdversary builds the classic nemesis of LRU: round-robin references
// over k+1 distinct pages, on which LRU faults every access while Belady
// faults roughly once per k accesses — exhibiting the Θ(k) competitive gap
// that Table I contrasts with the constant 3 of the cloud problem.
func CyclicAdversary(k, n int) []Page {
	refs := make([]Page, n)
	for i := range refs {
		refs[i] = Page(i % (k + 1))
	}
	return refs
}
