package paging

import (
	"fmt"
	"math/rand"
)

// LFU counts the faults of least-frequently-used eviction on a cache of
// size k. Frequencies persist across evictions (the classic "perfect LFU");
// ties break to the least recently used of the candidates.
func LFU(refs []Page, k int) (faults int, err error) {
	if k < 1 {
		return 0, fmt.Errorf("paging: cache size %d must be positive", k)
	}
	freq := map[Page]int{}
	lastUse := map[Page]int{}
	inCache := map[Page]bool{}
	for i, p := range refs {
		freq[p]++
		if inCache[p] {
			lastUse[p] = i
			continue
		}
		faults++
		if len(inCache) >= k {
			var victim Page
			first := true
			for q := range inCache {
				if first {
					victim = q
					first = false
					continue
				}
				if freq[q] < freq[victim] ||
					(freq[q] == freq[victim] && lastUse[q] < lastUse[victim]) {
					victim = q
				}
			}
			delete(inCache, victim)
		}
		inCache[p] = true
		lastUse[p] = i
	}
	return faults, nil
}

// Clock counts the faults of the second-chance (CLOCK) approximation of
// LRU: a circular scan clears reference bits until an unreferenced frame is
// found.
func Clock(refs []Page, k int) (faults int, err error) {
	if k < 1 {
		return 0, fmt.Errorf("paging: cache size %d must be positive", k)
	}
	frames := make([]Page, 0, k)
	refBit := map[Page]bool{}
	slot := map[Page]int{}
	hand := 0
	for _, p := range refs {
		if _, ok := slot[p]; ok {
			refBit[p] = true
			continue
		}
		faults++
		if len(frames) < k {
			slot[p] = len(frames)
			frames = append(frames, p)
			refBit[p] = true
			continue
		}
		for refBit[frames[hand]] {
			refBit[frames[hand]] = false
			hand = (hand + 1) % k
		}
		victim := frames[hand]
		delete(slot, victim)
		delete(refBit, victim)
		frames[hand] = p
		slot[p] = hand
		refBit[p] = true
		hand = (hand + 1) % k
	}
	return faults, nil
}

// Marking counts the faults of the randomized marking algorithm with the
// given seed: pages are marked on use; a fault on a full cache evicts a
// uniformly random *unmarked* page; when everything is marked a new phase
// begins with all marks cleared. Marking is Θ(log k)-competitive in
// expectation — between LRU's k and Belady's 1, which is exactly where
// Table I's comparison wants a third data point.
func Marking(refs []Page, k int, seed int64) (faults int, err error) {
	if k < 1 {
		return 0, fmt.Errorf("paging: cache size %d must be positive", k)
	}
	rng := rand.New(rand.NewSource(seed))
	inCache := map[Page]bool{}
	marked := map[Page]bool{}
	for _, p := range refs {
		if inCache[p] {
			marked[p] = true
			continue
		}
		faults++
		if len(inCache) >= k {
			var unmarked []Page
			for q := range inCache {
				if !marked[q] {
					unmarked = append(unmarked, q)
				}
			}
			if len(unmarked) == 0 {
				// Phase end: clear marks; every resident page is again a
				// candidate.
				for q := range marked {
					delete(marked, q)
				}
				for q := range inCache {
					unmarked = append(unmarked, q)
				}
			}
			// Deterministic iteration order for reproducibility: pick the
			// r-th smallest candidate.
			victim := nthSmallest(unmarked, rng.Intn(len(unmarked)))
			delete(inCache, victim)
			delete(marked, victim)
		}
		inCache[p] = true
		marked[p] = true
	}
	return faults, nil
}

// nthSmallest returns the n-th smallest page of a small candidate slice
// (selection by repeated minimum; candidate sets are at most k).
func nthSmallest(pages []Page, n int) Page {
	tmp := append([]Page(nil), pages...)
	for i := 0; i <= n; i++ {
		minIdx := i
		for j := i + 1; j < len(tmp); j++ {
			if tmp[j] < tmp[minIdx] {
				minIdx = j
			}
		}
		tmp[i], tmp[minIdx] = tmp[minIdx], tmp[i]
	}
	return tmp[n]
}
