package paging

import (
	"math/rand"
	"testing"
)

func TestLFUKeepsHotPages(t *testing.T) {
	// Page 0 is touched constantly; LFU must never evict it.
	var refs []Page
	for i := 0; i < 300; i++ {
		refs = append(refs, 0, Page(1+i%10))
	}
	lfu, err := LFU(refs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 faults once; the rotating cold pages fault nearly every visit.
	if lfu < 250 || lfu > 301 {
		t.Errorf("LFU faults = %d, expected cold-page churn only", lfu)
	}
	// Against a trace where frequency is the wrong signal (old hot page
	// never reused), LRU adapts and LFU does not.
	var shift []Page
	for i := 0; i < 100; i++ {
		shift = append(shift, 0) // build huge frequency
	}
	for i := 0; i < 200; i++ {
		shift = append(shift, Page(1+i%2), Page(3+i%2))
	}
	lfuShift, _ := LFU(shift, 3)
	lruShift, _ := LRU(shift, 3)
	if lruShift > lfuShift {
		t.Errorf("after a regime shift LRU (%d) should not fault more than LFU (%d)", lruShift, lfuShift)
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 30; trial++ {
		var refs []Page
		cur := Page(0)
		for i := 0; i < 500; i++ {
			if rng.Float64() < 0.7 {
				cur = Page((int(cur) + rng.Intn(3)) % 20)
			} else {
				cur = Page(rng.Intn(20))
			}
			refs = append(refs, cur)
		}
		clock, err := Clock(refs, 5)
		if err != nil {
			t.Fatal(err)
		}
		lru, err := LRU(refs, 5)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Belady(refs, 5)
		if err != nil {
			t.Fatal(err)
		}
		if clock < opt {
			t.Fatalf("trial %d: Clock %d below Belady %d", trial, clock, opt)
		}
		// Clock is an LRU approximation: within 40% of LRU on local traces.
		if float64(clock) > 1.4*float64(lru) {
			t.Errorf("trial %d: Clock %d far above LRU %d", trial, clock, lru)
		}
	}
}

func TestMarkingBeatsLRUOnCyclicAdversary(t *testing.T) {
	// The cyclic adversary forces LRU to fault on every access; randomized
	// marking faults only Θ(log k / k) of the time in expectation.
	k, n := 6, 1200
	refs := CyclicAdversary(k, n)
	lru, err := LRU(refs, k)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		m, err := Marking(refs, k, s)
		if err != nil {
			t.Fatal(err)
		}
		total += m
	}
	avg := float64(total) / seeds
	if avg >= float64(lru)/2 {
		t.Errorf("Marking avg %v should decisively beat LRU %d on the cycle", avg, lru)
	}
	opt, err := Belady(refs, k)
	if err != nil {
		t.Fatal(err)
	}
	if avg < float64(opt) {
		t.Errorf("Marking avg %v below Belady %d", avg, opt)
	}
}

func TestMarkingReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	refs := make([]Page, 400)
	for i := range refs {
		refs[i] = Page(rng.Intn(15))
	}
	a, err := Marking(refs, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marking(refs, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different faults: %d vs %d", a, b)
	}
}

func TestNewPoliciesEdgeCases(t *testing.T) {
	for name, f := range map[string]func([]Page, int) (int, error){
		"LFU":   LFU,
		"Clock": Clock,
		"Marking": func(r []Page, k int) (int, error) {
			return Marking(r, k, 1)
		},
	} {
		if _, err := f([]Page{1}, 0); err == nil {
			t.Errorf("%s accepted k=0", name)
		}
		if got, err := f(nil, 3); err != nil || got != 0 {
			t.Errorf("%s empty trace: (%d, %v)", name, got, err)
		}
		if got, err := f([]Page{7, 7, 7}, 2); err != nil || got != 1 {
			t.Errorf("%s repeated page: (%d, %v)", name, got, err)
		}
		// All policies fault at least the compulsory misses and never more
		// than every access.
		refs := []Page{1, 2, 3, 1, 2, 3, 4, 5}
		got, err := f(refs, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got < 5 || got > len(refs) {
			t.Errorf("%s faults = %d out of plausible range", name, got)
		}
	}
}

func TestNthSmallest(t *testing.T) {
	pages := []Page{5, 1, 9, 3}
	want := []Page{1, 3, 5, 9}
	for n, w := range want {
		if got := nthSmallest(pages, n); got != w {
			t.Errorf("nthSmallest(%d) = %d, want %d", n, got, w)
		}
	}
	// Input must not be mutated.
	if pages[0] != 5 || pages[3] != 3 {
		t.Errorf("input mutated: %v", pages)
	}
}
