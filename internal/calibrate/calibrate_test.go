package calibrate

import (
	"math"
	"strings"
	"testing"

	"datacache/internal/model"
	"datacache/internal/online"
)

func TestCalibrateMemoryCachedBlob(t *testing.T) {
	// A 10 GB object in a memory cache at $0.02/GB·h, cross-zone transfer
	// at $0.05/GB, modeled in hours.
	m, err := Calibrate(
		Prices{StoragePerGBHour: 0.02, TransferPerGB: 0.05},
		Item{SizeGB: 10, TimeUnit: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mu-0.2) > 1e-12 || math.Abs(m.Lambda-0.5) > 1e-12 {
		t.Fatalf("μ/λ = %v/%v, want 0.2/0.5", m.Mu, m.Lambda)
	}
	if math.Abs(m.Window-2.5) > 1e-12 || math.Abs(m.WindowHours-2.5) > 1e-12 {
		t.Errorf("window = %v units / %v h, want 2.5", m.Window, m.WindowHours)
	}
	if math.Abs(m.BreakEvenGapHours()-2.5) > 1e-12 {
		t.Errorf("break-even = %v", m.BreakEvenGapHours())
	}
	// 0.2 $/h * 720 h = 144 $/month.
	if got := m.MonthlyHoldCost(Item{SizeGB: 10, TimeUnit: 1}); math.Abs(got-144) > 1e-9 {
		t.Errorf("monthly hold = %v, want 144", got)
	}
	if !strings.Contains(m.String(), "Δt=2.5") {
		t.Errorf("rendering: %s", m)
	}
}

func TestCalibrateTimeUnitInvariance(t *testing.T) {
	// Switching the model time unit from hours to days must leave the
	// wall-clock window unchanged (the Scale-invariance of the optimizer,
	// seen from the calibration side).
	p := Prices{StoragePerGBHour: 0.004, TransferPerGB: 0.09}
	hours, err := Calibrate(p, Item{SizeGB: 2, TimeUnit: 1})
	if err != nil {
		t.Fatal(err)
	}
	days, err := Calibrate(p, Item{SizeGB: 2, TimeUnit: 24})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hours.WindowHours-days.WindowHours) > 1e-9 {
		t.Fatalf("wall window drifted: %v h vs %v h", hours.WindowHours, days.WindowHours)
	}
	if math.Abs(hours.Lambda-days.Lambda) > 1e-12 {
		t.Fatalf("λ depends on the time unit: %v vs %v", hours.Lambda, days.Lambda)
	}
}

func TestCalibrateFeedsThePolicies(t *testing.T) {
	// End to end: calibrated model drives SC on a sequence in hours.
	m, err := Calibrate(Prices{StoragePerGBHour: 0.01, TransferPerGB: 0.04}, Item{SizeGB: 5, TimeUnit: 1})
	if err != nil {
		t.Fatal(err)
	}
	cm := model.CostModel{Mu: m.Mu, Lambda: m.Lambda}
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	seq := &model.Sequence{M: 3, Origin: 1, Requests: []model.Request{
		{Server: 2, Time: 1},
		{Server: 2, Time: 2},
		{Server: 3, Time: 9},
	}}
	pt, err := online.CompetitiveRatio(online.SpeculativeCaching{}, seq, cm)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Ratio > 3 {
		t.Errorf("calibrated run ratio %v > 3", pt.Ratio)
	}
	if pt.Cost <= 0 || pt.Opt <= 0 {
		t.Errorf("degenerate costs: %+v", pt)
	}
}

func TestCalibrateErrors(t *testing.T) {
	cases := []struct {
		p  Prices
		it Item
	}{
		{Prices{0, 0.05}, Item{SizeGB: 1, TimeUnit: 1}},
		{Prices{0.02, 0}, Item{SizeGB: 1, TimeUnit: 1}},
		{Prices{0.02, 0.05}, Item{SizeGB: 0, TimeUnit: 1}},
		{Prices{0.02, 0.05}, Item{SizeGB: 1, TimeUnit: 0}},
		{Prices{math.Inf(1), 0.05}, Item{SizeGB: 1, TimeUnit: 1}},
	}
	for i, c := range cases {
		if _, err := Calibrate(c.p, c.it); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
