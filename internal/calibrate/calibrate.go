// Package calibrate turns real cloud prices into the paper's cost model.
// The homogeneous model has two parameters — μ (caching cost per unit time)
// and λ (transfer cost) — but operators think in catalog prices: $/GB·month
// for storage or memory, $/GB for egress. Calibration fixes the item size
// and the time unit and derives (μ, λ), plus the derived quantities that
// drive every policy decision: the speculative window Δt = λ/μ and the
// break-even revisit gap.
package calibrate

import (
	"fmt"
	"math"
)

// Prices is a cloud price card.
type Prices struct {
	// StoragePerGBHour is the caching price in $ per GB per hour (e.g.
	// memory-backed cache ~0.005-0.05, SSD ~0.0001).
	StoragePerGBHour float64
	// TransferPerGB is the inter-server data transfer price in $ per GB
	// (e.g. cross-zone egress ~0.01-0.09).
	TransferPerGB float64
}

// Item describes the cached object and the modeling time unit.
type Item struct {
	SizeGB   float64
	TimeUnit float64 // hours per model time unit (1 = hours, 24 = days)
}

// Model is the calibrated outcome.
type Model struct {
	Mu     float64 // $ per model time unit of caching the item
	Lambda float64 // $ per transfer of the item
	// Window is the speculative window Δt = λ/μ in model time units: keep
	// an idle copy this long before a re-fetch becomes cheaper.
	Window float64
	// WindowHours is the same in wall hours.
	WindowHours float64
}

// Calibrate derives the homogeneous cost model.
func Calibrate(p Prices, it Item) (Model, error) {
	if !(p.StoragePerGBHour > 0) || math.IsInf(p.StoragePerGBHour, 0) {
		return Model{}, fmt.Errorf("calibrate: storage price %v must be positive and finite", p.StoragePerGBHour)
	}
	if !(p.TransferPerGB > 0) || math.IsInf(p.TransferPerGB, 0) {
		return Model{}, fmt.Errorf("calibrate: transfer price %v must be positive and finite", p.TransferPerGB)
	}
	if !(it.SizeGB > 0) || !(it.TimeUnit > 0) {
		return Model{}, fmt.Errorf("calibrate: item size %v GB and time unit %v h must be positive", it.SizeGB, it.TimeUnit)
	}
	m := Model{
		Mu:     p.StoragePerGBHour * it.SizeGB * it.TimeUnit,
		Lambda: p.TransferPerGB * it.SizeGB,
	}
	m.Window = m.Lambda / m.Mu
	m.WindowHours = m.Window * it.TimeUnit
	return m, nil
}

// BreakEvenGapHours returns the revisit gap (in hours) above which a
// one-shot transfer beats holding the copy — the same quantity as
// WindowHours, exposed under its operational name.
func (m Model) BreakEvenGapHours() float64 { return m.WindowHours }

// MonthlyHoldCost returns the cost of pinning one copy for 30 days, the
// number an operator compares against request volume × λ.
func (m Model) MonthlyHoldCost(it Item) float64 {
	return m.Mu / it.TimeUnit * 24 * 30
}

// String renders the calibration compactly.
func (m Model) String() string {
	return fmt.Sprintf("μ=$%.6g/unit λ=$%.6g Δt=%.4g units (%.4g h)",
		m.Mu, m.Lambda, m.Window, m.WindowHours)
}
