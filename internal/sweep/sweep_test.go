package sweep

import (
	"strings"
	"testing"

	"datacache/internal/model"
	"datacache/internal/online"
	"datacache/internal/workload"
)

func smallConfig() Config {
	return Config{
		Workloads: []workload.Generator{
			workload.Uniform{M: 4, MeanGap: 1},
			workload.MarkovHop{M: 4, Stay: 0.8, MeanGap: 0.5},
		},
		Policies: []online.Runner{
			online.SpeculativeCaching{},
			online.AlwaysMigrate{},
		},
		Models: []model.CostModel{model.Unit, {Mu: 1, Lambda: 3}},
		Seeds:  []int64{1, 2, 3, 4, 5},
		N:      60,
	}
}

func TestSweepShapeAndBounds(t *testing.T) {
	aggs, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 policies x 2 models cells.
	if len(aggs) != 8 {
		t.Fatalf("cells = %d, want 8", len(aggs))
	}
	for _, a := range aggs {
		if a.Ratios.N != 5 {
			t.Errorf("%v: %d runs, want 5", a.Cell, a.Ratios.N)
		}
		if a.Ratios.Min < 1-1e-9 {
			t.Errorf("%v: ratio %v below 1 — policy beat the optimum", a.Cell, a.Ratios.Min)
		}
		if a.Cell.Policy == "SC" && a.Ratios.Max > 3 {
			t.Errorf("%v: SC worst ratio %v exceeds 3", a.Cell, a.Ratios.Max)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Cell != b[i].Cell || a[i].Ratios.Mean != b[i].Ratios.Mean {
			t.Fatalf("sweep not deterministic at cell %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSweepWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		cfg := smallConfig()
		cfg.Workers = workers
		if _, err := Run(cfg); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.N = 0
	if _, err := Run(cfg); err == nil {
		t.Error("N=0 accepted")
	}
	cfg = smallConfig()
	cfg.Policies = nil
	if _, err := Run(cfg); err == nil {
		t.Error("empty policy list accepted")
	}
}

func TestSweepPropagatesFailures(t *testing.T) {
	cfg := smallConfig()
	cfg.Models = []model.CostModel{{Mu: -1, Lambda: 1}} // invalid
	if _, err := Run(cfg); err == nil {
		t.Error("invalid model not propagated")
	}
}

func TestSweepTableRendering(t *testing.T) {
	aggs, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Table(aggs).String()
	if !strings.Contains(out, "mean ratio") || !strings.Contains(out, "SC") {
		t.Errorf("table missing columns:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 10 { // header + rule + 8 rows
		t.Errorf("table lines = %d:\n%s", got, out)
	}
}
