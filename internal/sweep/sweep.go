// Package sweep orchestrates parameter-sweep evaluations: the cross product
// of workload generators, online policies, cost models and seeds, executed
// on a bounded worker pool, aggregated into per-cell statistics across
// seeds. It is the repeated-measurement machinery behind dcbench's sweep
// report — where the per-experiment harnesses in internal/experiments run
// each configuration once, a sweep answers "how stable is that number"
// with mean, deviation and worst case over many seeded replicas.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/stats"
	"datacache/internal/workload"

	"math/rand"
)

// Config declares the sweep grid.
type Config struct {
	Workloads []workload.Generator
	Policies  []online.Runner
	Models    []model.CostModel
	Seeds     []int64
	N         int // requests per run
	Workers   int // 0 selects GOMAXPROCS
}

// Cell identifies one grid point (all seeds aggregated).
type Cell struct {
	Workload string
	Policy   string
	Model    model.CostModel
}

// Aggregate is the across-seed statistics for one cell's cost ratio
// (policy cost divided by the FastDP optimum of the same instance).
type Aggregate struct {
	Cell   Cell
	Ratios stats.Summary
}

// Run executes the sweep. Each (workload, model, seed) instance is
// generated once and shared by every policy, so policies are compared on
// identical inputs. Failures abort the sweep with the offending cell named.
func Run(cfg Config) ([]Aggregate, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sweep: N must be positive")
	}
	if len(cfg.Workloads) == 0 || len(cfg.Policies) == 0 || len(cfg.Models) == 0 || len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: empty grid dimension")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		wi, mi, si int
	}
	type sample struct {
		wi, pi, mi int
		ratio      float64
	}
	jobs := make(chan job)
	samples := make(chan sample)
	errs := make(chan error, 1)
	var failed atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// On failure the worker keeps draining jobs (without doing the
			// work) so the feeder and the sample collector both terminate.
			for j := range jobs {
				if failed.Load() {
					continue
				}
				gen := cfg.Workloads[j.wi]
				cm := cfg.Models[j.mi]
				seq := gen.Generate(rand.New(rand.NewSource(cfg.Seeds[j.si])), cfg.N)
				opt, err := offline.FastDP(seq, cm)
				if err != nil {
					sendErr(errs, fmt.Errorf("sweep: %s seed %d: %w", gen.Name(), cfg.Seeds[j.si], err))
					failed.Store(true)
					continue
				}
				for pi, p := range cfg.Policies {
					res, err := online.Run(p, seq, cm)
					if err != nil {
						sendErr(errs, fmt.Errorf("sweep: %s on %s: %w", p.Name(), gen.Name(), err))
						failed.Store(true)
						break
					}
					ratio := 1.0
					if opt.Cost() > 0 {
						ratio = res.Stats.Cost / opt.Cost()
					}
					samples <- sample{wi: j.wi, pi: pi, mi: j.mi, ratio: ratio}
				}
			}
		}()
	}
	go func() {
		for wi := range cfg.Workloads {
			for mi := range cfg.Models {
				for si := range cfg.Seeds {
					jobs <- job{wi, mi, si}
				}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(samples)
	}()

	acc := map[[3]int][]float64{}
	for s := range samples {
		k := [3]int{s.wi, s.pi, s.mi}
		acc[k] = append(acc[k], s.ratio)
	}
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	var out []Aggregate
	for k, ratios := range acc {
		out = append(out, Aggregate{
			Cell: Cell{
				Workload: cfg.Workloads[k[0]].Name(),
				Policy:   cfg.Policies[k[1]].Name(),
				Model:    cfg.Models[k[2]],
			},
			Ratios: stats.Summarize(ratios),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cell.Workload != out[b].Cell.Workload {
			return out[a].Cell.Workload < out[b].Cell.Workload
		}
		if out[a].Cell.Policy != out[b].Cell.Policy {
			return out[a].Cell.Policy < out[b].Cell.Policy
		}
		return out[a].Cell.Model.Lambda < out[b].Cell.Model.Lambda
	})
	return out, nil
}

// sendErr records the first failure without blocking later ones.
func sendErr(errs chan error, err error) {
	select {
	case errs <- err:
	default:
	}
}

// Table renders aggregates as a report table.
func Table(aggs []Aggregate) *stats.Table {
	t := &stats.Table{Header: []string{"workload", "policy", "λ/μ", "runs", "mean ratio", "std", "worst"}}
	for _, a := range aggs {
		t.Add(a.Cell.Workload, a.Cell.Policy, a.Cell.Model.Lambda/a.Cell.Model.Mu,
			a.Ratios.N, a.Ratios.Mean, a.Ratios.Std, a.Ratios.Max)
	}
	return t
}
