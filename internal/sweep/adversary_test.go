package sweep

import (
	"testing"

	"datacache/internal/model"
	"datacache/internal/online"
)

func TestAdversarySearchFindsStrongAdversary(t *testing.T) {
	res, err := AdversarySearch{
		Policy: online.SpeculativeCaching{},
		Model:  model.Unit,
		N:      500,
	}.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1.9 {
		t.Errorf("search found only ratio %v; tight slack should reach ≈2", res.Ratio)
	}
	if res.Ratio > 3 {
		t.Errorf("ratio %v exceeds the Theorem 3 bound", res.Ratio)
	}
	if res.Slack > 0.1 {
		t.Errorf("worst slack %v; the adversary should hug the window", res.Slack)
	}
	if res.Points < 24 {
		t.Errorf("probed only %d configurations", res.Points)
	}
}

func TestAdversarySearchOnRandomizedSC(t *testing.T) {
	det, err := AdversarySearch{Policy: online.SpeculativeCaching{}, Model: model.Unit, N: 400}.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := AdversarySearch{Policy: online.RandomizedSC{Seed: 5}, Model: model.Unit, N: 400}.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// The oblivious parametric adversary hurts the randomized policy less.
	if rnd.Ratio >= det.Ratio {
		t.Errorf("randomized worst %v should undercut deterministic worst %v", rnd.Ratio, det.Ratio)
	}
}

func TestAdversarySearchPropagatesErrors(t *testing.T) {
	_, err := AdversarySearch{Policy: online.SpeculativeCaching{}, Model: model.CostModel{}, N: 10}.Run(1)
	if err == nil {
		t.Error("invalid cost model accepted")
	}
}
