package sweep

import (
	"math/rand"

	"datacache/internal/model"
	"datacache/internal/online"
	"datacache/internal/workload"
)

// AdversarySearch hunts for the empirically worst competitive ratio of a
// policy by grid-searching the adversarial generator's parameters (slack
// past the speculative window, number of alternating servers) and then
// locally refining the slack around the best cell. It is the tool behind
// the "worst observed ratio" numbers in EXPERIMENTS.md: Theorem 3 bounds
// SC at 3; the search shows how close a parametric adversary actually
// gets (≈2 for deterministic SC — the paper's bound is not claimed tight,
// and the search quantifies the gap).
type AdversarySearch struct {
	Policy online.Runner
	Model  model.CostModel
	N      int // requests per probe
}

// SearchResult is the worst configuration found.
type SearchResult struct {
	Ratio  float64
	Slack  float64
	M      int
	Points int // configurations probed
}

// Run performs the search. It is deterministic for a given seed.
func (a AdversarySearch) Run(seed int64) (SearchResult, error) {
	best := SearchResult{}
	probe := func(mServers int, slack float64) error {
		gen := workload.Adversarial{M: mServers, Window: a.Model.Delta(), Slack: slack}
		seq := gen.Generate(rand.New(rand.NewSource(seed)), a.N)
		pt, err := online.CompetitiveRatio(a.Policy, seq, a.Model)
		if err != nil {
			return err
		}
		best.Points++
		if pt.Ratio > best.Ratio {
			best.Ratio, best.Slack, best.M = pt.Ratio, slack, mServers
		}
		return nil
	}
	// Coarse grid.
	for _, mServers := range []int{2, 3, 4} {
		for _, slack := range []float64{0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2} {
			if err := probe(mServers, slack); err != nil {
				return best, err
			}
		}
	}
	// Local refinement around the best slack: two halving passes.
	step := best.Slack / 2
	for pass := 0; pass < 2; pass++ {
		for _, slack := range []float64{best.Slack - step, best.Slack + step} {
			if slack <= 0 {
				continue
			}
			if err := probe(best.M, slack); err != nil {
				return best, err
			}
		}
		step /= 2
	}
	return best, nil
}
