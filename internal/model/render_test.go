package model

import (
	"strings"
	"testing"
)

func renderFixture() (*Sequence, *Schedule) {
	seq := &Sequence{M: 3, Origin: 1, Requests: []Request{
		{Server: 1, Time: 2},
		{Server: 3, Time: 4},
		{Server: 3, Time: 8},
	}}
	var s Schedule
	s.AddCache(1, 0, 4)
	s.AddCache(3, 4, 8)
	s.AddTransfer(1, 3, 4)
	s.Normalize()
	return seq, &s
}

func TestRenderSpaceTimeStructure(t *testing.T) {
	seq, s := renderFixture()
	out := RenderSpaceTime(seq, s, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 3 server rows + 2 gutters + axis + tick labels.
	if len(lines) != 7 {
		t.Fatalf("lines = %d, want 7:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "s1") || !strings.HasPrefix(lines[2], "s2") || !strings.HasPrefix(lines[4], "s3") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
	// Server 1: cached from t=0, a request at t=2, transfer source at t=4.
	if !strings.Contains(lines[0], "=") || !strings.Contains(lines[0], "*") || !strings.Contains(lines[0], "o") {
		t.Errorf("s1 row missing glyphs: %q", lines[0])
	}
	// Server 3: request marks and cached run.
	if strings.Count(lines[4], "*") != 2 {
		t.Errorf("s3 should carry 2 request marks: %q", lines[4])
	}
	// Both gutters carry the transfer pipe (s1 -> s3 spans both).
	if !strings.Contains(lines[1], "|") || !strings.Contains(lines[3], "|") {
		t.Errorf("gutters missing transfer pipe:\n%s", out)
	}
	// Pipe columns align across gutters.
	if strings.Index(lines[1], "|") != strings.Index(lines[3], "|") {
		t.Errorf("pipe misaligned:\n%s", out)
	}
	// Server 2 row is idle.
	if strings.ContainsAny(lines[2][4:], "=*ov") {
		t.Errorf("s2 should be idle: %q", lines[2])
	}
}

func TestRenderSpaceTimeDeterministic(t *testing.T) {
	seq, s := renderFixture()
	if RenderSpaceTime(seq, s, 40) != RenderSpaceTime(seq, s, 40) {
		t.Fatal("render not deterministic")
	}
}

func TestRenderWidthClamping(t *testing.T) {
	seq, s := renderFixture()
	narrow := RenderSpaceTime(seq, s, 5) // clamped to 20
	if len(strings.Split(narrow, "\n")[0]) != 4+20 {
		t.Errorf("narrow width not clamped: %q", strings.Split(narrow, "\n")[0])
	}
	def := RenderSpaceTime(seq, s, 0) // default 72
	if len(strings.Split(def, "\n")[0]) != 4+72 {
		t.Errorf("default width wrong")
	}
}

func TestRenderEmptyHorizon(t *testing.T) {
	seq := &Sequence{M: 2, Origin: 1}
	var s Schedule
	if got := RenderSpaceTime(seq, &s, 40); got != "(empty horizon)\n" {
		t.Errorf("empty = %q", got)
	}
}

func TestRenderLegendMentionsEveryGlyph(t *testing.T) {
	l := RenderLegend()
	for _, g := range []string{"*", "=", "o", "v", "|"} {
		if !strings.Contains(l, g) {
			t.Errorf("legend missing %q", g)
		}
	}
}

func TestRenderRequestMarksDominate(t *testing.T) {
	// A request inside a cache run must render as '*', not '='.
	seq := &Sequence{M: 1, Origin: 1, Requests: []Request{
		{Server: 1, Time: 5},
		{Server: 1, Time: 10},
	}}
	var s Schedule
	s.AddCache(1, 0, 10)
	out := RenderSpaceTime(seq, &s, 21)
	row := strings.Split(out, "\n")[0]
	// The horizon is t_n = 10; t=5 maps to column 10 of 0..20, offset by
	// the 4-char label.
	if row[4+10] != '*' || row[4+20] != '*' {
		t.Errorf("requests not marked over the cache run: %q", row)
	}
	if row[4+5] != '=' {
		t.Errorf("cache run missing between requests: %q", row)
	}
}
