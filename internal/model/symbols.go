package model

// This file maps the paper's notation (Table II) to this repository's
// identifiers, for readers following the code against the text.
//
//	Paper symbol            Code
//	------------            ----
//	s^j                     ServerID (1-based), Sequence.M servers
//	r_i = (s_i, t_i)        Request{Server, Time}; r_0 is implicit
//	                        (Sequence.Origin at time 0)
//	r_{-j} = (s^j, -∞)      the NoPrev sentinel in Sequence.Prev
//	δt_{i,j} = t_j - t_i    computed inline where needed
//	p(i)                    Sequence.Prev()[i]
//	p'(i)                   tracked inside the SC engines as the last touch
//	                        (request or transfer) per server
//	σ_i = t_i - t_{p(i)}    Sequence.Sigma()[i]
//	Tr(s_i, s_j, x)         Transfer{From, To, Time}
//	H(s, x, y)              CacheInterval{Server, From, To}
//	μ                       CostModel.Mu
//	λ                       CostModel.Lambda
//	Δt = λ/μ                CostModel.Delta (the speculative window)
//	ω^i_j, Ω_j              online.DTTransform's per-transfer attachments
//	β                       the upload cost of cloudsim.RunWithFaults
//	Ψ*(n), Π(Ψ(i))          offline.Result.Schedule / Schedule.Cost
//	b_i = min(λ, μσ_i)      MarginalBounds (Definition 4)
//	B_i = Σ b_j             RunningBounds (Definition 5)
//	C(i)                    offline.Result.C (Definition 6, Recurrence 2)
//	D(i)                    offline.Result.D (Definition 7, Recurrence 5)
//	π(i)                    enumerated inside offline.FastDP/NaiveDP/SweepDP
//	κ (pivot index)         offline.Result's recorded dPivot
//	SR, V-/H-reductions     online.ComputeReductions (Definitions 11, 12)
//	DT schedule             online.DTTransform (Definition 10)
//	space-time graph        BuildSpaceTimeGraph (Definition 2)
//
// The one symbol the paper defines but never uses operationally, β, becomes
// meaningful under fault injection (internal/cloudsim/faults.go): it prices
// recovery from external storage after a total copy loss.
