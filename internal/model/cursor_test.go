package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestCursorHoldersAt(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq)
	s.AddCache(2, 0.5, 3.2)
	s.Normalize()
	c := NewCursor(seq, s, Unit)

	cases := []struct {
		t    float64
		want []ServerID
	}{
		{0, []ServerID{1}},
		{1.0, []ServerID{1, 2}},
		{3.5, []ServerID{1}},
	}
	for _, tc := range cases {
		got := c.HoldersAt(tc.t)
		if len(got) != len(tc.want) {
			t.Fatalf("HoldersAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("HoldersAt(%v) = %v, want %v", tc.t, got, tc.want)
			}
		}
	}
}

func TestCursorCostMatchesScheduleCost(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	for trial := 0; trial < 100; trial++ {
		seq := &Sequence{M: 4, Origin: 1}
		tm := 0.0
		for i := 0; i < 20; i++ {
			tm += 0.1 + rng.Float64()
			seq.Requests = append(seq.Requests, Request{
				Server: ServerID(1 + rng.Intn(4)), Time: tm,
			})
		}
		var s Schedule
		s.AddCache(1, 0, seq.End())
		for _, r := range seq.Requests {
			if r.Server != 1 {
				s.AddTransfer(1, r.Server, r.Time)
				if rng.Float64() < 0.5 {
					s.AddCache(r.Server, r.Time, math.Min(seq.End(), r.Time+rng.Float64()))
				}
			}
		}
		s.Normalize()
		cm := CostModel{Mu: 0.5 + rng.Float64(), Lambda: 0.5 + rng.Float64()}
		c := NewCursor(seq, &s, cm)
		if got, want := c.TotalCost(), s.Cost(cm); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: cursor total %v != schedule cost %v", trial, got, want)
		}
		// Monotone and bounded partial costs at random probes.
		prev := -1.0
		for _, frac := range []float64{0, 0.2, 0.5, 0.8, 1.0, 1.5} {
			at := frac * seq.End()
			got := c.CostThrough(at)
			if got < prev-1e-9 {
				t.Fatalf("trial %d: CostThrough not monotone at %v", trial, at)
			}
			prev = got
		}
	}
}

func TestCursorPartialCostByHand(t *testing.T) {
	seq := &Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 2, Time: 4}}}
	var s Schedule
	s.AddCache(1, 0, 4)
	s.AddCache(2, 1, 3)
	s.AddTransfer(1, 2, 1)
	s.Normalize()
	cm := CostModel{Mu: 2, Lambda: 5}
	c := NewCursor(seq, &s, cm)
	// At t=2: caching elapsed = 2 (s1) + 1 (s2) = 3 → 6; one transfer → 5.
	if got := c.CostThrough(2); math.Abs(got-11) > 1e-12 {
		t.Errorf("CostThrough(2) = %v, want 11", got)
	}
	// At t=0.5: caching 0.5·2 = 1, no transfers yet.
	if got := c.CostThrough(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("CostThrough(0.5) = %v, want 1", got)
	}
	// Exactly at the transfer instant it is included.
	if got := c.CostThrough(1); math.Abs(got-(2*1+5)) > 1e-12 {
		t.Errorf("CostThrough(1) = %v, want 7", got)
	}
	if got := c.TotalCost(); math.Abs(got-(2*6+5)) > 1e-12 {
		t.Errorf("TotalCost = %v, want 17", got)
	}
}

func TestCursorEmptySchedule(t *testing.T) {
	seq := &Sequence{M: 2, Origin: 1}
	var s Schedule
	c := NewCursor(seq, &s, Unit)
	if c.TotalCost() != 0 || len(c.HoldersAt(1)) != 0 {
		t.Error("empty cursor not empty")
	}
}
