package model

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CacheInterval records that a copy of the data item is held in cache on
// Server for the closed time interval [From, To] — the paper's H(s, x, y).
// Its caching cost is Mu * (To - From).
type CacheInterval struct {
	Server ServerID
	From   float64
	To     float64
}

// Length returns To - From.
func (h CacheInterval) Length() float64 { return h.To - h.From }

// Contains reports whether time t lies in [From, To].
func (h CacheInterval) Contains(t float64) bool { return h.From <= t && t <= h.To }

// Transfer records a data item transfer Tr(From, To, Time): the item is
// copied from server From to server To at the (instantaneous) time Time, at
// cost Lambda. Replication is a transfer whose source copy survives;
// migration is one whose source copy is deleted right after — the schedule
// encodes the difference through cache intervals, not through the transfer.
type Transfer struct {
	From ServerID
	To   ServerID
	Time float64
}

// Schedule is a set of cache intervals and transfers (Definition 1). A
// feasible schedule keeps at least one copy alive over the whole horizon and
// has the item present at s_i when r_i fires; Validate checks both.
type Schedule struct {
	Caches    []CacheInterval
	Transfers []Transfer
}

// AddCache appends a cache interval H(server, from, to).
func (s *Schedule) AddCache(server ServerID, from, to float64) {
	s.Caches = append(s.Caches, CacheInterval{Server: server, From: from, To: to})
}

// AddTransfer appends a transfer Tr(from, to, at).
func (s *Schedule) AddTransfer(from, to ServerID, at float64) {
	s.Transfers = append(s.Transfers, Transfer{From: from, To: to, Time: at})
}

// Cost prices the schedule under cm: Mu times the total cached time plus
// Lambda per transfer. Call Normalize first if intervals may overlap on a
// server, otherwise overlapping stretches are charged more than once.
func (s *Schedule) Cost(cm CostModel) float64 {
	total := 0.0
	for _, h := range s.Caches {
		total += cm.Mu * h.Length()
	}
	total += cm.Lambda * float64(len(s.Transfers))
	return total
}

// CachingCost returns only the Mu * time part of the cost.
func (s *Schedule) CachingCost(cm CostModel) float64 {
	total := 0.0
	for _, h := range s.Caches {
		total += cm.Mu * h.Length()
	}
	return total
}

// TransferCost returns only the Lambda * count part of the cost.
func (s *Schedule) TransferCost(cm CostModel) float64 {
	return cm.Lambda * float64(len(s.Transfers))
}

// Normalize sorts intervals and transfers by time and merges overlapping or
// touching cache intervals on the same server, so that the schedule prices
// each cached second exactly once. Zero-length intervals are dropped.
func (s *Schedule) Normalize() {
	sort.Slice(s.Caches, func(a, b int) bool {
		if s.Caches[a].Server != s.Caches[b].Server {
			return s.Caches[a].Server < s.Caches[b].Server
		}
		return s.Caches[a].From < s.Caches[b].From
	})
	merged := s.Caches[:0]
	for _, h := range s.Caches {
		if h.To < h.From {
			h.From, h.To = h.To, h.From
		}
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.Server == h.Server && h.From <= last.To+timeEps {
				if h.To > last.To {
					last.To = h.To
				}
				continue
			}
		}
		merged = append(merged, h)
	}
	keep := merged[:0]
	for _, h := range merged {
		if h.Length() > 0 {
			keep = append(keep, h)
		}
	}
	s.Caches = keep
	sort.Slice(s.Transfers, func(a, b int) bool { return s.Transfers[a].Time < s.Transfers[b].Time })
}

// timeEps absorbs floating-point jitter when comparing schedule times.
const timeEps = 1e-9

// HeldAt reports whether some cache interval on server holds the item at
// time t.
func (s *Schedule) HeldAt(server ServerID, t float64) bool {
	for _, h := range s.Caches {
		if h.Server == server && h.From-timeEps <= t && t <= h.To+timeEps {
			return true
		}
	}
	return false
}

// Validate checks feasibility of the schedule for the given instance:
//
//  1. Every request r_i is served — either a cache interval on s_i contains
//     t_i, or a transfer ends at (s_i, t_i) whose source holds a live copy at
//     t_i (Observation 2).
//  2. Copy provenance — after normalization, every maximal cache interval
//     either starts at time 0 on the origin, starts at a transfer into its
//     server, or starts at a request served at that server at that instant
//     (a delivered copy that is then held).
//  3. Coverage — the union of cache intervals covers [0, t_n] with no gaps,
//     so at least one copy is alive at all times (problem condition 1).
//  4. Transfer provenance — every transfer's source holds a live copy at the
//     transfer time.
//
// Validate does not require minimality or optimality.
func (s *Schedule) Validate(seq *Sequence) error {
	if err := seq.Validate(); err != nil {
		return err
	}
	norm := &Schedule{
		Caches:    append([]CacheInterval(nil), s.Caches...),
		Transfers: append([]Transfer(nil), s.Transfers...),
	}
	norm.Normalize()

	// 4 (checked first so rule 1 may rely on it): transfer sources live.
	for _, tr := range norm.Transfers {
		if tr.From == tr.To {
			return fmt.Errorf("model: transfer at t=%v from server %d to itself", tr.Time, tr.From)
		}
		if !norm.HeldAt(tr.From, tr.Time) {
			return fmt.Errorf("model: transfer at t=%v sourced from server %d which holds no copy then", tr.Time, tr.From)
		}
	}

	// 1: every request served.
	for i, r := range seq.Requests {
		if norm.HeldAt(r.Server, r.Time) {
			continue
		}
		served := false
		for _, tr := range norm.Transfers {
			if tr.To == r.Server && math.Abs(tr.Time-r.Time) <= timeEps {
				served = true
				break
			}
		}
		if !served {
			return fmt.Errorf("model: request %d at (s%d, t=%v) is not served by cache or transfer", i+1, r.Server, r.Time)
		}
	}

	// 2: provenance of each maximal interval.
	for _, h := range norm.Caches {
		if h.From <= timeEps {
			if h.Server != seq.Origin {
				return fmt.Errorf("model: cache on server %d starts at t=0 but the origin is %d", h.Server, seq.Origin)
			}
			continue
		}
		ok := false
		for _, tr := range norm.Transfers {
			if tr.To == h.Server && math.Abs(tr.Time-h.From) <= timeEps {
				ok = true
				break
			}
		}
		if !ok {
			// A held copy may also originate at a request served at this
			// exact point by an incoming transfer already checked above, or
			// by an interval that was merged; after Normalize those cases
			// collapse, so reaching here without a transfer is an orphan.
			return fmt.Errorf("model: cache on server %d starting at t=%v has no originating transfer", h.Server, h.From)
		}
	}

	// 3: coverage of [0, t_n].
	if err := coverage(norm.Caches, seq.End()); err != nil {
		return err
	}
	return nil
}

// coverage checks that the union of intervals covers [0, end].
func coverage(caches []CacheInterval, end float64) error {
	if end <= 0 {
		return nil
	}
	ivs := make([]CacheInterval, len(caches))
	copy(ivs, caches)
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].From < ivs[b].From })
	reach := 0.0
	for _, h := range ivs {
		if h.From > reach+timeEps {
			return fmt.Errorf("model: no copy alive on (%v, %v)", reach, h.From)
		}
		if h.To > reach {
			reach = h.To
		}
		if reach >= end-timeEps {
			return nil
		}
	}
	return fmt.Errorf("model: no copy alive on (%v, %v)", reach, end)
}

// String renders the schedule compactly for logs and golden tests.
func (s *Schedule) String() string {
	var b strings.Builder
	b.WriteString("schedule{")
	for i, h := range s.Caches {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "H(s%d,%.4g,%.4g)", h.Server, h.From, h.To)
	}
	for _, tr := range s.Transfers {
		fmt.Fprintf(&b, " Tr(s%d->s%d,%.4g)", tr.From, tr.To, tr.Time)
	}
	b.WriteString("}")
	return b.String()
}

// CountReplicas returns the maximum number of copies simultaneously alive
// at any point of the horizon. A migration hand-off — one interval ending
// exactly where the next begins — counts as a single copy.
func (s *Schedule) CountReplicas(seq *Sequence) int {
	type event struct {
		at    float64
		delta int
	}
	evs := make([]event, 0, 2*len(s.Caches))
	for _, h := range s.Caches {
		evs = append(evs, event{h.From, +1}, event{h.To, -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		return evs[a].delta < evs[b].delta // close before open at hand-offs
	})
	alive, max := 0, 0
	for _, e := range evs {
		alive += e.delta
		if alive > max {
			max = alive
		}
	}
	return max
}
