package model

import (
	"math"
	"sort"
)

// SequenceStats summarizes a request sequence's shape: the quantities that
// determine how the caching algorithms will behave on it (revisit gaps
// against the speculative window, server skew, arrival density).
type SequenceStats struct {
	N         int
	M         int
	Horizon   float64 // t_n
	MeanGap   float64 // mean inter-arrival
	StayFrac  float64 // fraction of requests on the previous request's server
	TopShare  float64 // share of the busiest server
	Busiest   ServerID
	MedianRev float64 // median same-server revisit gap (σ), NaN if no revisits
	Untouched int     // servers with no requests
}

// AnalyzeSequence computes the summary. Invalid or empty sequences yield a
// zero value with N/M filled where possible.
func AnalyzeSequence(seq *Sequence) SequenceStats {
	st := SequenceStats{N: seq.N(), M: seq.M, MedianRev: math.NaN()}
	if seq.N() == 0 {
		st.Untouched = seq.M
		return st
	}
	st.Horizon = seq.End()
	st.MeanGap = st.Horizon / float64(seq.N())
	counts := make([]int, seq.M+1)
	stays := 0
	var revisits []float64
	sig := seq.Sigma()
	for i, r := range seq.Requests {
		counts[r.Server]++
		if i > 0 && r.Server == seq.Requests[i-1].Server {
			stays++
		}
		if !math.IsInf(sig[i+1], 1) {
			revisits = append(revisits, sig[i+1])
		}
	}
	if seq.N() > 1 {
		st.StayFrac = float64(stays) / float64(seq.N()-1)
	}
	top := 0
	for j := 1; j <= seq.M; j++ {
		if counts[j] == 0 {
			st.Untouched++
		}
		if counts[j] > top {
			top = counts[j]
			st.Busiest = ServerID(j)
		}
	}
	st.TopShare = float64(top) / float64(seq.N())
	if len(revisits) > 0 {
		sort.Float64s(revisits)
		st.MedianRev = revisits[len(revisits)/2]
	}
	return st
}

// CacheFriendliness scores how much of the sequence the speculative window
// Δt would capture: the fraction of revisit gaps at or below Δt. 1 means
// every revisit is a cache hit for SC; 0 means none are.
func (st SequenceStats) CacheFriendliness(seq *Sequence, cm CostModel) float64 {
	sig := seq.Sigma()
	within, total := 0, 0
	for i := 1; i < len(sig); i++ {
		if math.IsInf(sig[i], 1) {
			continue
		}
		total++
		if cm.Mu*sig[i] <= cm.Lambda {
			within++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(within) / float64(total)
}
