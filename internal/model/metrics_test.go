package model

import (
	"math"
	"testing"
)

func TestMetricsBreakdown(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq) // hold at origin, transfer everything else
	s.Normalize()
	ms := Metrics(seq, s)
	if len(ms) != seq.M {
		t.Fatalf("metrics for %d servers, want %d", len(ms), seq.M)
	}
	// Origin: holds the copy the entire horizon, serves its own request by
	// cache, sources every transfer.
	origin := ms[seq.Origin-1]
	if origin.Requests != 1 || origin.CacheServed != 1 {
		t.Errorf("origin requests/cacheServed = %d/%d", origin.Requests, origin.CacheServed)
	}
	if origin.TransfersOut != 6 || origin.TransfersIn != 0 {
		t.Errorf("origin transfers = %d out, %d in", origin.TransfersOut, origin.TransfersIn)
	}
	if math.Abs(origin.CachedTime-seq.End()) > 1e-12 || math.Abs(origin.Utilization-1) > 1e-12 {
		t.Errorf("origin cached time/utilization = %v/%v", origin.CachedTime, origin.Utilization)
	}
	// Server 2: three requests, all served by incoming transfers, no cache.
	s2 := ms[1]
	if s2.Requests != 3 || s2.CacheServed != 0 || s2.TransfersIn != 3 {
		t.Errorf("s2 = %+v", s2)
	}
	if s2.CachedTime != 0 || s2.Utilization != 0 {
		t.Errorf("s2 cached = %v", s2.CachedTime)
	}
	if got := TotalCachedTime(ms); math.Abs(got-seq.End()) > 1e-12 {
		t.Errorf("total cached time = %v, want %v", got, seq.End())
	}
}

func TestMetricsEmptyHorizon(t *testing.T) {
	seq := &Sequence{M: 2, Origin: 1}
	var s Schedule
	ms := Metrics(seq, &s)
	for _, m := range ms {
		if m.Utilization != 0 || m.CachedTime != 0 || m.Requests != 0 {
			t.Errorf("empty metrics = %+v", m)
		}
	}
}
