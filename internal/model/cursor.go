package model

import (
	"sort"
)

// Cursor answers point-in-time queries against a normalized schedule:
// which servers hold copies at time t, and how much cost has accrued
// through t. Queries are O(log |schedule|) after an O(|schedule| log)
// build, so a UI or operator tool can scrub along the timeline cheaply.
type Cursor struct {
	cm        CostModel
	caches    []CacheInterval // sorted by From
	transfers []Transfer      // sorted by Time
	// prefix[i] = caching time of caches[:i] fully elapsed... caching cost
	// through t needs partial intervals, so we keep starts and ends sorted
	// separately and use the identity:
	//   elapsed(t) = Σ min(t, To) - min(t, From)
	// computed from prefix sums over the sorted endpoints.
	starts, ends []float64 // sorted From and To values
	sumStarts    []float64 // prefix sums of starts
	sumEnds      []float64 // prefix sums of ends
}

// NewCursor builds a cursor over a schedule (normalized internally; the
// input is not modified).
func NewCursor(seq *Sequence, s *Schedule, cm CostModel) *Cursor {
	norm := &Schedule{
		Caches:    append([]CacheInterval(nil), s.Caches...),
		Transfers: append([]Transfer(nil), s.Transfers...),
	}
	norm.Normalize()
	c := &Cursor{cm: cm, caches: norm.Caches, transfers: norm.Transfers}
	for _, h := range norm.Caches {
		c.starts = append(c.starts, h.From)
		c.ends = append(c.ends, h.To)
	}
	sort.Float64s(c.starts)
	sort.Float64s(c.ends)
	c.sumStarts = prefixSums(c.starts)
	c.sumEnds = prefixSums(c.ends)
	return c
}

func prefixSums(xs []float64) []float64 {
	out := make([]float64, len(xs)+1)
	for i, x := range xs {
		out[i+1] = out[i] + x
	}
	return out
}

// HoldersAt returns the servers holding a copy at time t, ascending.
func (c *Cursor) HoldersAt(t float64) []ServerID {
	var out []ServerID
	seen := map[ServerID]bool{}
	for _, h := range c.caches {
		if h.From > t {
			break
		}
		if h.Contains(t) && !seen[h.Server] {
			seen[h.Server] = true
			out = append(out, h.Server)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// CostThrough returns the cost accrued on [0, t]: caching time elapsed by t
// priced at μ, plus λ per transfer at or before t.
func (c *Cursor) CostThrough(t float64) float64 {
	// Σ min(t, To): ends <= t contribute themselves, the rest contribute t.
	kEnd := sort.SearchFloat64s(c.ends, t)
	for kEnd < len(c.ends) && c.ends[kEnd] == t {
		kEnd++
	}
	sumTo := c.sumEnds[kEnd] + float64(len(c.ends)-kEnd)*t
	kStart := sort.SearchFloat64s(c.starts, t)
	for kStart < len(c.starts) && c.starts[kStart] == t {
		kStart++
	}
	sumFrom := c.sumStarts[kStart] + float64(len(c.starts)-kStart)*t
	elapsed := sumTo - sumFrom

	nTr := sort.Search(len(c.transfers), func(i int) bool { return c.transfers[i].Time > t })
	return c.cm.Mu*elapsed + c.cm.Lambda*float64(nTr)
}

// TotalCost returns the full schedule cost (equals CostThrough at or past
// the last event).
func (c *Cursor) TotalCost() float64 {
	last := 0.0
	if n := len(c.ends); n > 0 {
		last = c.ends[n-1]
	}
	if n := len(c.transfers); n > 0 && c.transfers[n-1].Time > last {
		last = c.transfers[n-1].Time
	}
	return c.CostThrough(last)
}
