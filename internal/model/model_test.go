package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fig2Sequence is the instance depicted in Fig. 2 of the paper (also used by
// offline tests through a shared constructor there). Times are read off the
// figure's axis; the exact values matter only to this package's structural
// tests, not to the golden cost checks which live in internal/offline.
func fig2Sequence() *Sequence {
	return &Sequence{
		M:      4,
		Origin: 1,
		Requests: []Request{
			{Server: 2, Time: 0.5},
			{Server: 3, Time: 0.8},
			{Server: 4, Time: 1.1},
			{Server: 1, Time: 1.4},
			{Server: 2, Time: 2.6},
			{Server: 2, Time: 3.2},
			{Server: 3, Time: 4.0},
		},
	}
}

func TestSequenceValidateOK(t *testing.T) {
	if err := fig2Sequence().Validate(); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
}

func TestSequenceValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		seq  Sequence
	}{
		{"no servers", Sequence{M: 0, Origin: 1}},
		{"origin out of range", Sequence{M: 2, Origin: 3}},
		{"origin zero", Sequence{M: 2, Origin: 0}},
		{"server out of range", Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 5, Time: 1}}}},
		{"server zero", Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 0, Time: 1}}}},
		{"time zero", Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 1, Time: 0}}}},
		{"times not increasing", Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 1, Time: 2}, {Server: 2, Time: 2}}}},
		{"time NaN", Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 1, Time: math.NaN()}}}},
		{"time Inf", Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 1, Time: math.Inf(1)}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.seq.Validate(); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
}

func TestPrevTable(t *testing.T) {
	seq := fig2Sequence()
	p := seq.Prev()
	// Requests: 1:s2 2:s3 3:s4 4:s1 5:s2 6:s2 7:s3.
	want := []int{0, NoPrev, NoPrev, NoPrev, 0, 1, 5, 2}
	if len(p) != len(want) {
		t.Fatalf("Prev length = %d, want %d", len(p), len(want))
	}
	for i := 1; i < len(want); i++ {
		if p[i] != want[i] {
			t.Errorf("p(%d) = %d, want %d", i, p[i], want[i])
		}
	}
}

func TestSigma(t *testing.T) {
	seq := fig2Sequence()
	sig := seq.Sigma()
	// σ_4 = t_4 - t_0 = 1.4; σ_5 = 2.6-0.5 = 2.1; σ_6 = 3.2-2.6 = 0.6;
	// σ_7 = 4.0-0.8 = 3.2; σ_1..σ_3 are +Inf (first touch of their servers).
	for i := 1; i <= 3; i++ {
		if !math.IsInf(sig[i], 1) {
			t.Errorf("σ_%d = %v, want +Inf", i, sig[i])
		}
	}
	approx := func(i int, want float64) {
		if math.Abs(sig[i]-want) > 1e-12 {
			t.Errorf("σ_%d = %v, want %v", i, sig[i], want)
		}
	}
	approx(4, 1.4)
	approx(5, 2.1)
	approx(6, 0.6)
	approx(7, 3.2)
}

func TestMarginalAndRunningBounds(t *testing.T) {
	seq := fig2Sequence()
	b := MarginalBounds(seq, Unit)
	B := RunningBounds(seq, Unit)
	// From the Fig. 6 table: b = 1,1,1,1,1,0.6,1 and B_7 = 6.6.
	wantB := []float64{0, 1, 1, 1, 1, 1, 0.6, 1}
	for i := 1; i < len(wantB); i++ {
		if math.Abs(b[i]-wantB[i]) > 1e-12 {
			t.Errorf("b_%d = %v, want %v", i, b[i], wantB[i])
		}
	}
	if math.Abs(B[7]-6.6) > 1e-12 {
		t.Errorf("B_7 = %v, want 6.6", B[7])
	}
	for i := 1; i < len(B); i++ {
		if B[i] < B[i-1] {
			t.Errorf("running bound decreased at %d: %v < %v", i, B[i], B[i-1])
		}
	}
}

func TestTimeOfServerOfBoundaries(t *testing.T) {
	seq := fig2Sequence()
	if got := seq.TimeOf(0); got != 0 {
		t.Errorf("TimeOf(0) = %v, want 0", got)
	}
	if got := seq.TimeOf(NoPrev); !math.IsInf(got, -1) {
		t.Errorf("TimeOf(NoPrev) = %v, want -Inf", got)
	}
	if got := seq.ServerOf(0); got != seq.Origin {
		t.Errorf("ServerOf(0) = %v, want origin %v", got, seq.Origin)
	}
	if got := seq.ServerOf(NoPrev); got != 0 {
		t.Errorf("ServerOf(NoPrev) = %v, want 0", got)
	}
	if got := seq.ServerOf(3); got != 4 {
		t.Errorf("ServerOf(3) = %v, want 4", got)
	}
}

func TestCostModelValidate(t *testing.T) {
	good := []CostModel{Unit, {Mu: 0.25, Lambda: 9}, {Mu: 100, Lambda: 0.001}}
	for _, cm := range good {
		if err := cm.Validate(); err != nil {
			t.Errorf("valid cost model %+v rejected: %v", cm, err)
		}
	}
	bad := []CostModel{{}, {Mu: 1}, {Lambda: 1}, {Mu: -1, Lambda: 1}, {Mu: 1, Lambda: math.Inf(1)}, {Mu: math.NaN(), Lambda: 1}}
	for _, cm := range bad {
		if err := cm.Validate(); err == nil {
			t.Errorf("invalid cost model %+v accepted", cm)
		}
	}
}

func TestDelta(t *testing.T) {
	cm := CostModel{Mu: 2, Lambda: 5}
	if got := cm.Delta(); got != 2.5 {
		t.Errorf("Delta = %v, want 2.5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	seq := fig2Sequence()
	c := seq.Clone()
	c.Requests[0].Time = 99
	if seq.Requests[0].Time == 99 {
		t.Fatal("Clone shares the request slice")
	}
}

func TestEnd(t *testing.T) {
	seq := fig2Sequence()
	if got := seq.End(); got != 4.0 {
		t.Errorf("End = %v, want 4.0", got)
	}
	empty := &Sequence{M: 1, Origin: 1}
	if got := empty.End(); got != 0 {
		t.Errorf("empty End = %v, want 0", got)
	}
}

func TestScheduleCost(t *testing.T) {
	var s Schedule
	s.AddCache(1, 0, 1.5)
	s.AddCache(2, 1.5, 2.0)
	s.AddTransfer(1, 2, 1.5)
	cm := CostModel{Mu: 2, Lambda: 3}
	if got, want := s.Cost(cm), 2*2.0+3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	if got := s.CachingCost(cm); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("CachingCost = %v, want 4", got)
	}
	if got := s.TransferCost(cm); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("TransferCost = %v, want 3", got)
	}
}

func TestNormalizeMergesAndSorts(t *testing.T) {
	var s Schedule
	s.AddCache(1, 2, 3)
	s.AddCache(1, 0, 1)
	s.AddCache(1, 1, 2.5) // touches both: all three merge
	s.AddCache(2, 5, 5)   // zero length: dropped
	s.AddTransfer(1, 2, 7)
	s.AddTransfer(2, 1, 3)
	s.Normalize()
	if len(s.Caches) != 1 {
		t.Fatalf("normalized caches = %v, want a single merged interval", s.Caches)
	}
	if s.Caches[0] != (CacheInterval{Server: 1, From: 0, To: 3}) {
		t.Errorf("merged interval = %+v", s.Caches[0])
	}
	if s.Transfers[0].Time != 3 || s.Transfers[1].Time != 7 {
		t.Errorf("transfers not sorted: %+v", s.Transfers)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Schedule
	for i := 0; i < 50; i++ {
		from := rng.Float64() * 10
		s.AddCache(ServerID(1+rng.Intn(3)), from, from+rng.Float64())
	}
	s.Normalize()
	before := s.String()
	s.Normalize()
	if s.String() != before {
		t.Fatalf("Normalize not idempotent:\n%s\n%s", before, s.String())
	}
}

// validSchedule builds a hand-checked feasible schedule for fig2Sequence:
// hold the item at the origin the whole horizon and transfer to every
// off-origin request.
func validSchedule(seq *Sequence) *Schedule {
	var s Schedule
	s.AddCache(seq.Origin, 0, seq.End())
	for _, r := range seq.Requests {
		if r.Server != seq.Origin {
			s.AddTransfer(seq.Origin, r.Server, r.Time)
		}
	}
	return &s
}

func TestValidateAcceptsFeasible(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq)
	if err := s.Validate(seq); err != nil {
		t.Fatalf("feasible schedule rejected: %v", err)
	}
}

func TestValidateRejectsUnserved(t *testing.T) {
	seq := fig2Sequence()
	var s Schedule
	s.AddCache(seq.Origin, 0, seq.End())
	// No transfers: every off-origin request is unserved.
	if err := s.Validate(seq); err == nil {
		t.Fatal("schedule with unserved requests accepted")
	}
}

func TestValidateRejectsCoverageGap(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq)
	// Cut the single covering interval short.
	s.Caches[0].To = 2.0
	// Re-serve late requests with caches that leave a gap (2.0, 2.6).
	s.AddCache(2, 2.6, 3.2)
	s.AddCache(3, 4.0, 4.0)
	if err := s.Validate(seq); err == nil {
		t.Fatal("schedule with a coverage gap accepted")
	}
}

func TestValidateRejectsDeadTransferSource(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq)
	s.AddTransfer(4, 3, 4.0) // server 4 holds nothing at t=4
	if err := s.Validate(seq); err == nil {
		t.Fatal("transfer from dead source accepted")
	}
}

func TestValidateRejectsSelfTransfer(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq)
	s.AddTransfer(1, 1, 1.0)
	if err := s.Validate(seq); err == nil {
		t.Fatal("self transfer accepted")
	}
}

func TestValidateRejectsOrphanCache(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq)
	s.AddCache(4, 2.0, 2.2) // no transfer ever lands on s4 at t=2
	if err := s.Validate(seq); err == nil {
		t.Fatal("orphan cache interval accepted")
	}
}

func TestValidateRejectsWrongOriginStart(t *testing.T) {
	seq := fig2Sequence()
	var s Schedule
	s.AddCache(2, 0, seq.End()) // starts at 0 on a non-origin server
	for _, r := range seq.Requests {
		if r.Server != 2 {
			s.AddTransfer(2, r.Server, r.Time)
		}
	}
	if err := s.Validate(seq); err == nil {
		t.Fatal("cache starting at t=0 off-origin accepted")
	}
}

func TestHeldAt(t *testing.T) {
	var s Schedule
	s.AddCache(3, 1, 2)
	if !s.HeldAt(3, 1) || !s.HeldAt(3, 2) || !s.HeldAt(3, 1.5) {
		t.Error("HeldAt misses points inside the interval")
	}
	if s.HeldAt(3, 2.5) || s.HeldAt(2, 1.5) {
		t.Error("HeldAt hits points outside the interval")
	}
}

func TestCountReplicas(t *testing.T) {
	seq := fig2Sequence()
	s := validSchedule(seq)
	s.AddCache(2, 0.5, 3.2)
	s.Normalize()
	if got := s.CountReplicas(seq); got != 2 {
		t.Errorf("CountReplicas = %d, want 2", got)
	}
}

func TestScheduleString(t *testing.T) {
	var s Schedule
	s.AddCache(1, 0, 1)
	s.AddTransfer(1, 2, 1)
	got := s.String()
	want := "schedule{H(s1,0,1) Tr(s1->s2,1)}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSortRequests(t *testing.T) {
	reqs := []Request{{Server: 1, Time: 3}, {Server: 2, Time: 1}, {Server: 3, Time: 2}}
	SortRequests(reqs)
	if reqs[0].Time != 1 || reqs[1].Time != 2 || reqs[2].Time != 3 {
		t.Errorf("SortRequests failed: %+v", reqs)
	}
}

func TestSpaceTimeGraphShape(t *testing.T) {
	seq := fig2Sequence()
	g := BuildSpaceTimeGraph(seq, Unit)
	n := seq.N()
	if got, want := g.NumVertices(), (seq.M+1)*(n+1); got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if got, want := len(g.CacheEdges), seq.M*n; got != want {
		t.Errorf("cache edges = %d, want %d", got, want)
	}
	if got, want := len(g.TransferEdges), 2*(seq.M-1)*n; got != want {
		t.Errorf("transfer edges = %d, want %d", got, want)
	}
	for _, e := range g.TransferEdges {
		if e.Weight != Unit.Lambda {
			t.Fatalf("transfer edge weight %v != lambda", e.Weight)
		}
		if e.FromCol != e.ToCol {
			t.Fatalf("transfer edge spans columns: %+v", e)
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ { // cache edge weights telescope to t_n per row
		sum += g.CacheEdges[i*seq.M].Weight
	}
	if math.Abs(sum-seq.End()) > 1e-12 {
		t.Errorf("cache edge weights along a row sum to %v, want %v", sum, seq.End())
	}
}

func TestRequestVertex(t *testing.T) {
	seq := fig2Sequence()
	g := BuildSpaceTimeGraph(seq, Unit)
	row, col := g.RequestVertex(3)
	if row != 4 || col != 3 {
		t.Errorf("RequestVertex(3) = (%d,%d), want (4,3)", row, col)
	}
	row, col = g.RequestVertex(0)
	if row != int(seq.Origin) || col != 0 {
		t.Errorf("RequestVertex(0) = (%d,%d), want (origin,0)", row, col)
	}
	defer func() {
		if recover() == nil {
			t.Error("RequestVertex out of range did not panic")
		}
	}()
	g.RequestVertex(99)
}

func TestScheduleWeightMatchesCost(t *testing.T) {
	seq := fig2Sequence()
	g := BuildSpaceTimeGraph(seq, Unit)
	s := validSchedule(seq)
	s.Normalize()
	if got, want := g.ScheduleWeight(s, Unit), s.Cost(Unit); math.Abs(got-want) > 1e-9 {
		t.Errorf("graph weight %v != schedule cost %v", got, want)
	}
}

func TestQuickRunningBoundsMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		seq := &Sequence{M: 5, Origin: 1}
		tm := 0.0
		for _, v := range raw {
			tm += 0.001 + float64(v%1000)/100
			seq.Requests = append(seq.Requests, Request{Server: ServerID(1 + int(v)%5), Time: tm})
		}
		B := RunningBounds(seq, CostModel{Mu: 0.7, Lambda: 2.3})
		for i := 1; i < len(B); i++ {
			if B[i] < B[i-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrevSigmaAgainstBruteForce derives p(i) and σ_i by brute-force
// scanning and checks the incremental table construction against it.
func TestQuickPrevSigmaAgainstBruteForce(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		const m = 4
		seq := &Sequence{M: m, Origin: 1}
		tm := 0.0
		for _, v := range raw {
			tm += 0.001 + float64(v%500)/100
			seq.Requests = append(seq.Requests, Request{Server: ServerID(1 + int(v)%m), Time: tm})
		}
		p := seq.Prev()
		sig := seq.Sigma()
		for i := 1; i <= seq.N(); i++ {
			// Brute force: the largest j < i on the same server, else the
			// boundary (origin) or the dummy.
			want := NoPrev
			if seq.Requests[i-1].Server == seq.Origin {
				want = 0
			}
			for j := i - 1; j >= 1; j-- {
				if seq.Requests[j-1].Server == seq.Requests[i-1].Server {
					want = j
					break
				}
			}
			if p[i] != want {
				return false
			}
			if want == NoPrev {
				if !math.IsInf(sig[i], 1) {
					return false
				}
			} else if math.Abs(sig[i]-(seq.TimeOf(i)-seq.TimeOf(want))) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizePreservesCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		var s Schedule
		for i := 0; i < 30; i++ {
			from := rng.Float64() * 10
			s.AddCache(ServerID(1+rng.Intn(4)), from, from+rng.Float64()*2)
		}
		probes := make([]float64, 50)
		for i := range probes {
			probes[i] = rng.Float64() * 12
		}
		before := make([]bool, len(probes))
		for i, p := range probes {
			before[i] = s.HeldAt(1, p) || s.HeldAt(2, p) || s.HeldAt(3, p) || s.HeldAt(4, p)
		}
		s.Normalize()
		for i, p := range probes {
			after := s.HeldAt(1, p) || s.HeldAt(2, p) || s.HeldAt(3, p) || s.HeldAt(4, p)
			if after != before[i] {
				t.Fatalf("trial %d: Normalize changed coverage at t=%v", trial, p)
			}
		}
	}
}
