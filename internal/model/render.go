package model

import (
	"fmt"
	"math"
	"strings"
)

// RenderSpaceTime draws a schedule as the paper's space-time diagrams
// (Figs. 1, 2, 6, 7): one row per server, time flowing right, '=' runs for
// cache intervals, '*' for requests, '|' columns for transfers, 'o' for a
// transfer's source endpoint and 'v' for its delivery. Width is the number
// of character columns for the time axis (minimum 20; default 72 when 0).
//
// The rendering is deterministic, so golden tests can assert entire
// diagrams, and dcbench fig2/fig6 print the actual figures they reproduce.
func RenderSpaceTime(seq *Sequence, s *Schedule, width int) string {
	if width <= 0 {
		width = 72
	}
	if width < 20 {
		width = 20
	}
	end := seq.End()
	if end <= 0 {
		return "(empty horizon)\n"
	}
	col := func(t float64) int {
		c := int(math.Round(t / end * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	rows := make([][]byte, seq.M)
	for j := range rows {
		rows[j] = []byte(strings.Repeat(" ", width))
	}
	put := func(server ServerID, c int, ch byte, overwrite bool) {
		r := rows[server-1]
		if overwrite || r[c] == ' ' || r[c] == '=' || r[c] == '-' {
			r[c] = ch
		}
	}

	// Cache intervals as '=' runs.
	for _, h := range s.Caches {
		from, to := col(h.From), col(h.To)
		for c := from; c <= to; c++ {
			put(h.Server, c, '=', false)
		}
	}
	// Transfers as endpoints; the vertical pipe is drawn in the gutter rows
	// between server lines afterwards.
	type pipe struct {
		c        int
		from, to ServerID
	}
	var pipes []pipe
	for _, tr := range s.Transfers {
		c := col(tr.Time)
		put(tr.From, c, 'o', true)
		put(tr.To, c, 'v', true)
		pipes = append(pipes, pipe{c: c, from: tr.From, to: tr.To})
	}
	// Requests as '*', the most prominent mark.
	for _, r := range seq.Requests {
		put(r.Server, col(r.Time), '*', true)
	}

	// Gutter rows: a '|' wherever a transfer spans between the two adjacent
	// server rows.
	gutters := make([][]byte, seq.M-1)
	for g := range gutters {
		gutters[g] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pipes {
		lo, hi := p.from, p.to
		if lo > hi {
			lo, hi = hi, lo
		}
		for g := int(lo); g < int(hi); g++ {
			gutters[g-1][p.c] = '|'
		}
	}

	var b strings.Builder
	label := func(j int) string { return fmt.Sprintf("s%-3d", j+1) }
	for j := 0; j < seq.M; j++ {
		b.WriteString(label(j))
		b.Write(rows[j])
		b.WriteByte('\n')
		if j < seq.M-1 {
			b.WriteString("    ")
			b.Write(gutters[j])
			b.WriteByte('\n')
		}
	}
	// Time axis with a handful of tick labels.
	b.WriteString("    ")
	axis := []byte(strings.Repeat("-", width))
	ticks := 4
	var labels []string
	var positions []int
	for k := 0; k <= ticks; k++ {
		t := end * float64(k) / float64(ticks)
		c := col(t)
		axis[c] = '+'
		positions = append(positions, c)
		labels = append(labels, fmt.Sprintf("%.3g", t))
	}
	b.Write(axis)
	b.WriteByte('\n')
	// The last label may extend past the axis; give the row enough room and
	// trim trailing blanks.
	tickRow := []byte(strings.Repeat(" ", width+12))
	for i, pos := range positions {
		for k, ch := range []byte(labels[i]) {
			if pos+k < len(tickRow) {
				tickRow[pos+k] = ch
			}
		}
	}
	b.WriteString("    ")
	b.WriteString(strings.TrimRight(string(tickRow), " "))
	b.WriteByte('\n')
	return b.String()
}

// RenderLegend explains the diagram glyphs.
func RenderLegend() string {
	return "legend: * request   = cached copy   o transfer source   v transfer delivery   | transfer\n"
}
