package model

import (
	"math"
	"testing"
)

func TestAnalyzeSequenceFig2(t *testing.T) {
	seq := fig2Sequence()
	st := AnalyzeSequence(seq)
	if st.N != 7 || st.M != 4 || st.Horizon != 4.0 {
		t.Fatalf("shape = %+v", st)
	}
	// Consecutive same-server pairs: (r5,r6) only → 1 of 6.
	if math.Abs(st.StayFrac-1.0/6) > 1e-12 {
		t.Errorf("stay = %v, want 1/6", st.StayFrac)
	}
	// s2 carries 3 of 7.
	if st.Busiest != 2 || math.Abs(st.TopShare-3.0/7) > 1e-12 {
		t.Errorf("busiest = s%d (%v)", st.Busiest, st.TopShare)
	}
	// Revisit gaps: 1.4, 2.1, 0.6, 3.2 → median (upper) 2.1.
	if math.Abs(st.MedianRev-2.1) > 1e-12 {
		t.Errorf("median revisit = %v, want 2.1", st.MedianRev)
	}
	if st.Untouched != 0 {
		t.Errorf("untouched = %d", st.Untouched)
	}
}

func TestAnalyzeSequenceEmpty(t *testing.T) {
	st := AnalyzeSequence(&Sequence{M: 3, Origin: 1})
	if st.N != 0 || st.Untouched != 3 || !math.IsNaN(st.MedianRev) {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestCacheFriendliness(t *testing.T) {
	seq := fig2Sequence()
	st := AnalyzeSequence(seq)
	// At λ=μ=1: gaps {1.4, 2.1, 0.6, 3.2}, only 0.6 <= 1 → 1/4.
	if got := st.CacheFriendliness(seq, Unit); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("friendliness = %v, want 0.25", got)
	}
	// At λ=4: all four gaps within the window.
	if got := st.CacheFriendliness(seq, CostModel{Mu: 1, Lambda: 4}); got != 1 {
		t.Errorf("friendliness = %v, want 1", got)
	}
	// No revisits at all.
	single := &Sequence{M: 2, Origin: 1, Requests: []Request{{Server: 2, Time: 1}}}
	if got := AnalyzeSequence(single).CacheFriendliness(single, Unit); got != 0 {
		t.Errorf("no-revisit friendliness = %v, want 0", got)
	}
}
