package model

import "math"

// ServerMetrics aggregates one server's share of a schedule.
type ServerMetrics struct {
	Server       ServerID
	Requests     int     // requests that arrived at this server
	CacheServed  int     // of those, served by a local cache interval
	TransfersIn  int     // transfers delivering a copy to this server
	TransfersOut int     // transfers sourced from this server
	CachedTime   float64 // total time this server held a copy
	Utilization  float64 // CachedTime / horizon (0 when the horizon is 0)
}

// Metrics breaks a schedule down per server against its request sequence:
// who served what, where copies lived, and how long. It works for any
// feasible schedule — off-line optima, online runs, or simulator output —
// and powers the dcsim -metrics report.
func Metrics(seq *Sequence, s *Schedule) []ServerMetrics {
	out := make([]ServerMetrics, seq.M)
	for j := range out {
		out[j].Server = ServerID(j + 1)
	}
	for _, r := range seq.Requests {
		m := &out[r.Server-1]
		m.Requests++
		if s.HeldAt(r.Server, r.Time) {
			m.CacheServed++
		}
	}
	for _, tr := range s.Transfers {
		if tr.To >= 1 && int(tr.To) <= seq.M {
			out[tr.To-1].TransfersIn++
		}
		if tr.From >= 1 && int(tr.From) <= seq.M {
			out[tr.From-1].TransfersOut++
		}
	}
	for _, h := range s.Caches {
		if h.Server >= 1 && int(h.Server) <= seq.M {
			out[h.Server-1].CachedTime += h.Length()
		}
	}
	if end := seq.End(); end > 0 {
		for j := range out {
			out[j].Utilization = math.Min(1, out[j].CachedTime/end)
		}
	}
	return out
}

// TotalCachedTime sums the cached time across servers — the μ-weighted part
// of the schedule cost divided by Mu.
func TotalCachedTime(ms []ServerMetrics) float64 {
	total := 0.0
	for _, m := range ms {
		total += m.CachedTime
	}
	return total
}
