// Package model defines the problem instance types shared by every algorithm
// in this repository: servers, timed requests, the homogeneous cost model of
// the paper, schedules (cache intervals plus transfers), schedule validation
// and pricing, and the space-time graph of Definition 2.
//
// Conventions follow the paper ("Data Caching in Next Generation Mobile Cloud
// Services, Online vs. Off-line", ICPP 2017):
//
//   - Servers are identified 1..m, written s^j in the paper.
//   - The shared data item initially resides at an origin server (the paper's
//     s^1) at time 0; the boundary request r_0 = (origin, 0).
//   - Request times are strictly increasing and strictly positive.
//   - Caching costs Mu per unit time per live copy; any transfer costs
//     Lambda. Replication and deletion are free (folded into the transfer
//     cost, as in Section III).
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ServerID identifies a cache server. Valid IDs are 1..m, matching the
// paper's superscript notation s^j. The zero value is invalid.
type ServerID int

// Request is one timed access r_i = (s_i, t_i) to the shared data item.
type Request struct {
	Server ServerID // s_i, the server the request arrives at
	Time   float64  // t_i, strictly increasing along a sequence
}

// Sequence is a problem instance: m fully connected servers, an origin
// holding the single initial copy at time 0, and a time-ordered request
// vector R = <r_1, ..., r_n>.
type Sequence struct {
	M        int       // number of servers, m >= 1
	Origin   ServerID  // initial holder of the data item (the paper's s^1)
	Requests []Request // strictly increasing times, all > 0
}

// N returns the number of requests n.
func (s *Sequence) N() int { return len(s.Requests) }

// End returns t_n, the time of the last request, or 0 for an empty sequence.
// Feasible schedules must keep at least one copy alive on [0, End].
func (s *Sequence) End() float64 {
	if len(s.Requests) == 0 {
		return 0
	}
	return s.Requests[len(s.Requests)-1].Time
}

// Validate checks the structural invariants of the instance: server count,
// origin in range, every request server in range, and strictly increasing
// positive request times.
func (s *Sequence) Validate() error {
	if s.M < 1 {
		return fmt.Errorf("model: sequence has m=%d servers, need at least 1", s.M)
	}
	if s.Origin < 1 || int(s.Origin) > s.M {
		return fmt.Errorf("model: origin %d out of range 1..%d", s.Origin, s.M)
	}
	prev := 0.0
	for i, r := range s.Requests {
		if r.Server < 1 || int(r.Server) > s.M {
			return fmt.Errorf("model: request %d at server %d out of range 1..%d", i+1, r.Server, s.M)
		}
		if r.Time <= prev {
			return fmt.Errorf("model: request %d time %v not strictly after %v", i+1, r.Time, prev)
		}
		if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
			return fmt.Errorf("model: request %d time %v is not finite", i+1, r.Time)
		}
		prev = r.Time
	}
	return nil
}

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	c := &Sequence{M: s.M, Origin: s.Origin, Requests: make([]Request, len(s.Requests))}
	copy(c.Requests, s.Requests)
	return c
}

// NoPrev marks a request with no same-server predecessor (the paper's dummy
// r_{-j} at time -infinity).
const NoPrev = -1

// Prev computes the predecessor table p(i) for i = 1..n using the paper's
// boundary conventions: entry 0 corresponds to the boundary request
// r_0 = (Origin, 0); p(i) = 0 when the previous request on s_i is r_0 itself
// (that is, s_i == Origin and no earlier real request hit it); and
// p(i) = NoPrev when server s_i has never been touched (the dummy request at
// -infinity). The returned slice has length n+1; index 0 is unused.
func (s *Sequence) Prev() []int {
	n := len(s.Requests)
	p := make([]int, n+1)
	last := make([]int, s.M+1)
	for j := range last {
		last[j] = NoPrev
	}
	last[s.Origin] = 0
	for i := 1; i <= n; i++ {
		sv := s.Requests[i-1].Server
		p[i] = last[sv]
		last[sv] = i
	}
	return p
}

// TimeOf returns t_i under the extended indexing used by the recurrences:
// t_0 = 0 (boundary request at the origin) and t_i for a real request
// i in 1..n. Calling it with NoPrev returns -Inf, the paper's dummy time.
func (s *Sequence) TimeOf(i int) float64 {
	switch {
	case i == NoPrev:
		return math.Inf(-1)
	case i == 0:
		return 0
	default:
		return s.Requests[i-1].Time
	}
}

// ServerOf returns s_i under the extended indexing: index 0 maps to the
// origin. Calling it with NoPrev returns 0 (no server).
func (s *Sequence) ServerOf(i int) ServerID {
	switch {
	case i == NoPrev:
		return 0
	case i == 0:
		return s.Origin
	default:
		return s.Requests[i-1].Server
	}
}

// Sigma returns the server-interval table σ_i = t_i - t_{p(i)} for i = 1..n
// (index 0 unused). A request with no predecessor gets +Inf.
func (s *Sequence) Sigma() []float64 {
	p := s.Prev()
	sig := make([]float64, len(p))
	for i := 1; i < len(p); i++ {
		if p[i] == NoPrev {
			sig[i] = math.Inf(1)
		} else {
			sig[i] = s.TimeOf(i) - s.TimeOf(p[i])
		}
	}
	return sig
}

// CostModel is the homogeneous cost model of Section III: caching costs Mu
// per unit time per live copy on any server, and transferring the item
// between any pair of distinct servers costs Lambda.
type CostModel struct {
	Mu     float64 // caching cost rate μ > 0
	Lambda float64 // uniform transfer cost λ > 0
}

// Validate rejects non-positive or non-finite rates.
func (c CostModel) Validate() error {
	if !(c.Mu > 0) || math.IsInf(c.Mu, 0) {
		return fmt.Errorf("model: caching rate Mu=%v must be positive and finite", c.Mu)
	}
	if !(c.Lambda > 0) || math.IsInf(c.Lambda, 0) {
		return fmt.Errorf("model: transfer cost Lambda=%v must be positive and finite", c.Lambda)
	}
	return nil
}

// Delta returns the speculative window Δt = λ/μ of Section V: the longest
// time for which keeping a copy alive is no more expensive than one transfer.
func (c CostModel) Delta() float64 { return c.Lambda / c.Mu }

// Unit is the cost model with Mu = Lambda = 1 used throughout the paper's
// worked examples (Fig. 2 and Fig. 6).
var Unit = CostModel{Mu: 1, Lambda: 1}

// MarginalBounds returns the marginal cost bounds b_i = min(λ, μσ_i)
// (Definition 4) for i = 1..n; index 0 is unused and zero.
func MarginalBounds(seq *Sequence, cm CostModel) []float64 {
	sig := seq.Sigma()
	b := make([]float64, len(sig))
	for i := 1; i < len(sig); i++ {
		b[i] = math.Min(cm.Lambda, cm.Mu*sig[i])
	}
	return b
}

// RunningBounds returns the running bounds B_i = Σ_{j<=i} b_j
// (Definition 5) for i = 0..n, with B_0 = 0. B_n lower-bounds the optimal
// cost of any schedule.
func RunningBounds(seq *Sequence, cm CostModel) []float64 {
	b := MarginalBounds(seq, cm)
	B := make([]float64, len(b))
	for i := 1; i < len(b); i++ {
		B[i] = B[i-1] + b[i]
	}
	return B
}

// ErrEmptySequence is returned by algorithms that need at least one request.
var ErrEmptySequence = errors.New("model: sequence has no requests")

// SortRequests orders requests by time in place. It is a convenience for
// generators that synthesize requests out of order; Validate still requires
// strictly increasing times afterwards (ties must be perturbed by the
// caller).
func SortRequests(reqs []Request) {
	sort.Slice(reqs, func(a, b int) bool { return reqs[a].Time < reqs[b].Time })
}
