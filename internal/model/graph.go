package model

import "fmt"

// SpaceTimeGraph is the weighted directed graph of Definition 2. Vertices
// v_{j,i} correspond to time t_i on server s^j (row 0 is the external
// storage row of the definition, kept for fidelity but unused by the
// homogeneous-cost algorithms). Cache edges run horizontally between
// consecutive columns on one server and weigh Mu*(t_i - t_{i-1}); transfer
// edges run vertically within a column between the request vertex and every
// other server, weighing Lambda each way.
//
// The graph is an analysis artifact: schedules are subgraphs of it, and the
// standard form of Observation 1 says some optimal schedule only uses
// transfer edges that end on request vertices. The graph is used by tests and
// documentation, not by the O(mn) algorithm itself.
type SpaceTimeGraph struct {
	M     int       // servers (rows 1..M; row 0 is external storage)
	Times []float64 // column times: t_0 = 0 followed by t_1..t_n
	Reqs  []int     // Reqs[i] = server of the request in column i (0 for column 0 holds the origin)

	CacheEdges    []GraphEdge
	TransferEdges []GraphEdge
}

// GraphEdge is one weighted directed edge of the space-time graph.
type GraphEdge struct {
	FromRow, FromCol int
	ToRow, ToCol     int
	Weight           float64
}

// BuildSpaceTimeGraph materializes the graph for an instance. Column 0 is
// the boundary request r_0 at the origin; column i>=1 is request r_i.
func BuildSpaceTimeGraph(seq *Sequence, cm CostModel) *SpaceTimeGraph {
	n := seq.N()
	g := &SpaceTimeGraph{M: seq.M}
	g.Times = make([]float64, n+1)
	g.Reqs = make([]int, n+1)
	g.Reqs[0] = int(seq.Origin)
	for i := 1; i <= n; i++ {
		g.Times[i] = seq.Requests[i-1].Time
		g.Reqs[i] = int(seq.Requests[i-1].Server)
	}
	// Cache edges: (v_{j,i-1} -> v_{j,i}) for every server row.
	for i := 1; i <= n; i++ {
		w := cm.Mu * (g.Times[i] - g.Times[i-1])
		for j := 1; j <= seq.M; j++ {
			g.CacheEdges = append(g.CacheEdges, GraphEdge{FromRow: j, FromCol: i - 1, ToRow: j, ToCol: i, Weight: w})
		}
	}
	// Transfer edges: within column i, between the request vertex and every
	// other server row, both directions (the biconnected star of Def. 2).
	for i := 1; i <= n; i++ {
		rj := g.Reqs[i]
		for j := 1; j <= seq.M; j++ {
			if j == rj {
				continue
			}
			g.TransferEdges = append(g.TransferEdges,
				GraphEdge{FromRow: j, FromCol: i, ToRow: rj, ToCol: i, Weight: cm.Lambda},
				GraphEdge{FromRow: rj, FromCol: i, ToRow: j, ToCol: i, Weight: cm.Lambda})
		}
	}
	return g
}

// NumVertices returns (m+1) * (n+1), counting the external-storage row.
func (g *SpaceTimeGraph) NumVertices() int { return (g.M + 1) * len(g.Times) }

// RequestVertex returns the (row, col) coordinates of request vertex r_i.
func (g *SpaceTimeGraph) RequestVertex(i int) (row, col int) {
	if i < 0 || i >= len(g.Reqs) {
		panic(fmt.Sprintf("model: request vertex %d out of range 0..%d", i, len(g.Reqs)-1))
	}
	return g.Reqs[i], i
}

// ScheduleWeight prices a schedule by summing the graph edges it uses: the
// cache edges spanned by its intervals and one transfer edge per transfer.
// For schedules in standard form this equals Schedule.Cost; the method exists
// so tests can confirm the equivalence of the two views.
func (g *SpaceTimeGraph) ScheduleWeight(s *Schedule, cm CostModel) float64 {
	total := cm.Lambda * float64(len(s.Transfers))
	for i := 1; i < len(g.Times); i++ {
		segFrom, segTo := g.Times[i-1], g.Times[i]
		for j := 1; j <= g.M; j++ {
			if scheduleCovers(s, ServerID(j), segFrom, segTo) {
				total += cm.Mu * (segTo - segFrom)
			}
		}
	}
	return total
}

// scheduleCovers reports whether s caches server sv over all of [from, to].
func scheduleCovers(s *Schedule, sv ServerID, from, to float64) bool {
	for _, h := range s.Caches {
		if h.Server == sv && h.From <= from+timeEps && to <= h.To+timeEps {
			return true
		}
	}
	return false
}
