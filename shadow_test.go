package datacache_test

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"datacache"
	"datacache/internal/offline"
)

// shadowEquivalenceCases pairs each live policy configuration with the
// shadow spec that runs the identical decider.
var shadowEquivalenceCases = []struct {
	name string
	opts datacache.SessionOptions
	spec string
}{
	{"sc", datacache.SessionOptions{}, "sc"},
	{"sc-epoch", datacache.SessionOptions{EpochTransfers: 3}, "sc:epoch=3"},
	{"ttl", datacache.SessionOptions{Policy: "ttl", Window: 0.7}, "ttl:window=0.7"},
	{"migrate", datacache.SessionOptions{Policy: "migrate"}, "migrate"},
	{"replicate", datacache.SessionOptions{Policy: "replicate"}, "replicate"},
}

// TestShadowSelfEquivalence is the counterfactual-accounting acceptance
// check: a shadow running the live policy's own decider must reproduce
// Session.Cost() bit for bit — on the paper's Fig. 6 instance and on
// random non-dyadic workloads, through both the single-serve and the
// batch path. Any drift here means the shadow ledger is not the engine.
func TestShadowSelfEquivalence(t *testing.T) {
	fig6, fig6cm := offline.Fig6Instance()
	for _, tc := range shadowEquivalenceCases {
		t.Run(tc.name, func(t *testing.T) {
			type workload struct {
				name string
				seq  *datacache.Sequence
				cm   datacache.CostModel
			}
			wls := []workload{{"fig6", fig6, fig6cm}}
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				wls = append(wls, workload{"random", randomSequence(rng, 5, 60), datacache.CostModel{Mu: 1, Lambda: 2}})
			}
			for _, wl := range wls {
				for _, batch := range []bool{false, true} {
					opts := tc.opts
					shadows, err := datacache.WithShadowPolicies(tc.spec, "replicate")
					if err != nil {
						t.Fatal(err)
					}
					if tc.name == "replicate" {
						// The live policy already is replicate; a second
						// replicate shadow would duplicate the label.
						shadows = shadows[:1]
					}
					opts.ShadowPolicies = shadows
					sess, err := datacache.NewSession(wl.seq.M, wl.seq.Origin, wl.cm, &opts)
					if err != nil {
						t.Fatal(err)
					}
					if batch {
						if _, err := sess.ServeBatch(context.Background(), wl.seq.Requests); err != nil {
							t.Fatal(err)
						}
					} else {
						for _, r := range wl.seq.Requests {
							if _, err := sess.Serve(r.Server, r.Time); err != nil {
								t.Fatal(err)
							}
						}
					}
					rep := sess.ShadowReport()
					if rep == nil {
						t.Fatal("shadowed session returned nil report")
					}
					liveRow, twinRow := rep.Standings[0], rep.Standings[1]
					if !liveRow.Live {
						t.Fatal("first standing is not the live row")
					}
					if twinRow.Err != "" {
						t.Fatalf("%s/batch=%v: twin shadow died: %s", wl.name, batch, twinRow.Err)
					}
					if twinRow.Cost != sess.Cost() {
						t.Errorf("%s/batch=%v: twin shadow cost %v != Session.Cost %v (must be bitwise equal)",
							wl.name, batch, twinRow.Cost, sess.Cost())
					}
					if liveRow.Cost != sess.Cost() {
						t.Errorf("%s/batch=%v: live row cost %v != Session.Cost %v", wl.name, batch, liveRow.Cost, sess.Cost())
					}
					if twinRow.Hits != sess.Hits() || twinRow.Transfers != sess.Transfers() {
						t.Errorf("%s/batch=%v: twin hits/transfers %d/%d != live %d/%d",
							wl.name, batch, twinRow.Hits, twinRow.Transfers, sess.Hits(), sess.Transfers())
					}
					if twinRow.Divergence != 0 {
						t.Errorf("%s/batch=%v: twin divergence %d, want 0", wl.name, batch, twinRow.Divergence)
					}
					// CostLive prices the same ledger through the O(M)
					// accumulator path; it must agree to fp accumulation order.
					if got, want := sess.ShadowCostLive(0), sess.CostLive(); math.Abs(got-want) > 1e-9*(1+want) {
						t.Errorf("%s/batch=%v: twin CostLive %v != live CostLive %v", wl.name, batch, got, want)
					}
				}
			}
		})
	}
}

func TestParseShadowPolicy(t *testing.T) {
	good := map[string]string{
		"sc":             "sc",
		"sc:epoch=16":    "sc:epoch=16",
		"sc:window=1.5":  "sc:window=1.5",
		"ttl:window=0.5": "ttl:window=0.5",
		"migrate":        "migrate",
		"replicate":      "replicate",
	}
	for spec, want := range good {
		sp, err := datacache.ParseShadowPolicy(spec)
		if err != nil {
			t.Errorf("ParseShadowPolicy(%q): %v", spec, err)
			continue
		}
		if got := sp.Spec(); got != want {
			t.Errorf("ParseShadowPolicy(%q).Spec() = %q, want %q", spec, got, want)
		}
	}
	bad := []string{"", "ttl", "ttl:window=0", "sc:epoch=0", "sc:window=-1", "sc:bogus=1", "sc:epoch", "warp"}
	for _, spec := range bad {
		if _, err := datacache.ParseShadowPolicy(spec); err == nil {
			t.Errorf("ParseShadowPolicy(%q) should fail", spec)
		}
	}
	if _, err := datacache.WithShadowPolicies("migrate", "migrate"); err == nil {
		// Parsing succeeds; the duplicate label is rejected at session create.
		if _, err := datacache.NewSession(3, 1, datacache.Unit, &datacache.SessionOptions{
			ShadowPolicies: mustShadows(t, "migrate", "migrate"),
		}); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("duplicate shadow labels at create: err = %v, want duplicate-label error", err)
		}
	}
}

func mustShadows(t *testing.T, specs ...string) []datacache.ShadowPolicy {
	t.Helper()
	sps, err := datacache.WithShadowPolicies(specs...)
	if err != nil {
		t.Fatal(err)
	}
	return sps
}

// TestShadowReportStandings checks the leaderboard semantics on a
// workload where the policies genuinely differ: divergence counts are
// positive, Best marks the minimum-cost row, and the decision bitmask
// maps bit i to ShadowNames()[i].
func TestShadowReportStandings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seq := randomSequence(rng, 5, 80)
	cm := datacache.CostModel{Mu: 1, Lambda: 2}
	sess, err := datacache.NewSession(seq.M, seq.Origin, cm, &datacache.SessionOptions{
		ShadowPolicies: mustShadows(t, "migrate", "replicate", "ttl:window=0.3"),
	})
	if err != nil {
		t.Fatal(err)
	}
	names := sess.ShadowNames()
	if len(names) != 3 || names[0] != "migrate" || names[2] != "ttl:window=0.3" {
		t.Fatalf("ShadowNames = %v", names)
	}
	maskDiverged := make([]int, len(names))
	for _, r := range seq.Requests {
		d, err := sess.Serve(r.Server, r.Time)
		if err != nil {
			t.Fatal(err)
		}
		for i := range names {
			if d.ShadowDiverged&(1<<uint(i)) != 0 {
				maskDiverged[i]++
			}
		}
	}
	rep := sess.ShadowReport()
	if rep == nil {
		t.Fatal("nil report")
	}
	if len(rep.Standings) != 4 {
		t.Fatalf("standings = %d rows, want live + 3", len(rep.Standings))
	}
	bestRows := 0
	minCost := math.Inf(1)
	for _, row := range rep.Standings {
		if row.Cost < minCost {
			minCost = row.Cost
		}
		if row.Best {
			bestRows++
			if row.Policy != rep.Best {
				t.Errorf("Best label %q != starred row %q", rep.Best, row.Policy)
			}
		}
	}
	if bestRows != 1 {
		t.Errorf("%d rows marked best, want exactly 1", bestRows)
	}
	for _, row := range rep.Standings {
		if row.Best && row.Cost != minCost {
			t.Errorf("best row cost %v != minimum %v", row.Cost, minCost)
		}
	}
	// Per-decision mask counts must equal the report's divergence column.
	for i, name := range names {
		var row datacache.ShadowStanding
		for _, r := range rep.Standings {
			if !r.Live && r.Policy == name {
				row = r
			}
		}
		if row.Divergence != maskDiverged[i] {
			t.Errorf("shadow %q divergence %d != %d masked decisions", name, row.Divergence, maskDiverged[i])
		}
	}
	// Each shadow's exact cost must match an independent batch run of the
	// same policy over the same sequence.
	indep := map[string]datacache.Policy{
		"migrate":        datacache.AlwaysMigrate{},
		"replicate":      datacache.KeepEverywhere{},
		"ttl:window=0.3": datacache.SpeculativeCaching{Window: 0.3},
	}
	for name, pol := range indep {
		run, err := datacache.Serve(pol, seq, cm)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rep.Standings {
			if row.Live || row.Policy != name {
				continue
			}
			if row.Cost != run.Stats.Cost {
				t.Errorf("shadow %q cost %v != independent batch run %v", name, row.Cost, run.Stats.Cost)
			}
		}
	}
	if sess.Shadows() == nil {
		t.Error("Shadows() returned nil on a shadowed session")
	}
}

// TestShadowBeatsLiveAlert drives a live policy that a shadow clearly
// dominates (replicate holding M copies vs migrate holding one, with
// holding-dominated costs) and checks the shadow_beats_live rule fires,
// the transition hook sees it, and Alerts() merges it in.
func TestShadowBeatsLiveAlert(t *testing.T) {
	cm := datacache.CostModel{Mu: 1, Lambda: 2}
	sess, err := datacache.NewSession(6, 1, cm, &datacache.SessionOptions{
		Policy:         "replicate",
		ShadowPolicies: mustShadows(t, "migrate"),
		ShadowWindow:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fired bool
	sess.SetShadowTransitionHook(func(rule datacache.AlertRule, from, to datacache.AlertState, at, v float64) {
		if rule.Name != datacache.ShadowAlertRuleName {
			t.Errorf("hook rule %q, want %q", rule.Name, datacache.ShadowAlertRuleName)
		}
		if to == datacache.AlertFiring {
			fired = true
		}
	})
	// Walk the request around the ring with big gaps: replicate pays
	// holding on every copy it has accumulated, migrate on exactly one.
	for i := 0; i < 30; i++ {
		srv := datacache.ServerID(1 + (i % 6))
		if _, err := sess.Serve(srv, float64(i+1)*10); err != nil {
			t.Fatal(err)
		}
	}
	a, ok := sess.ShadowAlert()
	if !ok {
		t.Fatal("shadowed session with default margin should track the alert")
	}
	if a.State != datacache.AlertFiring {
		t.Fatalf("shadow_beats_live state = %v (value %.3f), want firing", a.State, a.Value)
	}
	if !fired {
		t.Error("transition hook never saw the firing step")
	}
	found := false
	for _, al := range sess.Alerts() {
		if al.Rule.Name == datacache.ShadowAlertRuleName {
			found = true
		}
	}
	if !found {
		t.Error("Alerts() does not include shadow_beats_live")
	}
	rep := sess.ShadowReport()
	if rep.Alert == nil || rep.Alert.Rule.Name != datacache.ShadowAlertRuleName {
		t.Error("ShadowReport.Alert missing")
	}

	// A negative margin disables the rule entirely.
	quiet, err := datacache.NewSession(6, 1, cm, &datacache.SessionOptions{
		Policy:         "replicate",
		ShadowPolicies: mustShadows(t, "migrate"),
		ShadowMargin:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := quiet.ShadowAlert(); ok {
		t.Error("ShadowMargin < 0 should disable the alert")
	}
}

// TestPoolShadowAggregation checks the pool-wide counterfactual ledger:
// a shadow running the live policy tracks Pool.Cost() exactly (dyadic
// times), survives LRU eviction of item engines, and a divergent shadow
// accumulates pool-wide divergence.
func TestPoolShadowAggregation(t *testing.T) {
	pool, err := datacache.NewPool(4, 1, datacache.Unit, &datacache.PoolOptions{
		Session: datacache.SessionOptions{
			ShadowPolicies: mustShadows(t, "sc", "replicate"),
			ShadowMargin:   -1,
		},
		MaxItems: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	items := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		item := items[rng.Intn(len(items))]
		srv := datacache.ServerID(1 + rng.Intn(4))
		if _, err := pool.Serve("", item, srv, float64(i+1)*0.25); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Evictions() == 0 {
		t.Fatal("workload should churn the MaxItems=2 bound")
	}
	names := pool.ShadowNames()
	if len(names) != 2 || names[0] != "sc" {
		t.Fatalf("pool ShadowNames = %v", names)
	}
	costs := pool.ShadowCosts()
	if math.Abs(costs[0]-pool.Cost()) > 1e-9 {
		t.Errorf("pool twin-shadow cost %v != pool cost %v (must survive eviction)", costs[0], pool.Cost())
	}
	rep := pool.ShadowReport()
	if rep == nil {
		t.Fatal("nil pool shadow report")
	}
	if len(rep.Standings) != 3 {
		t.Fatalf("pool standings = %d rows, want live + 2", len(rep.Standings))
	}
	live := rep.Standings[0]
	if !live.Live || math.Abs(live.Cost-pool.Cost()) > 1e-12 {
		t.Errorf("live row %+v does not reflect pool cost %v", live, pool.Cost())
	}
	var twin, repl datacache.ShadowStanding
	for _, row := range rep.Standings[1:] {
		switch row.Policy {
		case "sc":
			twin = row
		case "replicate":
			repl = row
		}
	}
	if math.Abs(twin.Cost-pool.Cost()) > 1e-9 {
		t.Errorf("twin row cost %v != pool cost %v", twin.Cost, pool.Cost())
	}
	if twin.Divergence != 0 {
		t.Errorf("twin divergence %d, want 0", twin.Divergence)
	}
	if repl.Divergence == 0 {
		t.Error("replicate shadow never diverged from live sc on a zipf-ish workload")
	}
	if twin.Hits == 0 || twin.Transfers == 0 {
		t.Errorf("twin hits/transfers %d/%d, want both > 0", twin.Hits, twin.Transfers)
	}
	if pool.Shadows() == nil {
		t.Error("Pool.Shadows() returned nil on a shadowed pool")
	}

	// A pool without shadows reports nothing.
	plain, err := datacache.NewPool(4, 1, datacache.Unit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ShadowReport() != nil || plain.ShadowNames() != nil {
		t.Error("plain pool should have no shadow report")
	}
}
