package datacache_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"datacache"
	"datacache/internal/offline"
)

// TestServeBatchEquivalence is the batch-path acceptance check: one
// 100-request ServeBatch call must leave a session in a state bitwise
// identical — cost, optimum, trace ring, SLO tracker — to 100 single
// Serve calls on a twin session, because both run the same engine path.
// Also pinned on the paper's Fig. 6 running example.
func TestServeBatchEquivalence(t *testing.T) {
	cm := datacache.CostModel{Mu: 1, Lambda: 2}
	opts := &datacache.SessionOptions{TraceCap: 64, SLOWindow: 16}

	fig6, fig6cm := offline.Fig6Instance()
	cases := []struct {
		name string
		seq  *datacache.Sequence
		cm   datacache.CostModel
	}{
		{"fig6", fig6, fig6cm},
		{"random-100", randomSequence(rand.New(rand.NewSource(42)), 5, 100), cm},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			single, err := datacache.NewSession(tc.seq.M, tc.seq.Origin, tc.cm, opts)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := datacache.NewSession(tc.seq.M, tc.seq.Origin, tc.cm, opts)
			if err != nil {
				t.Fatal(err)
			}

			var lastSingle datacache.Decision
			for _, r := range tc.seq.Requests {
				d, err := single.Serve(r.Server, r.Time)
				if err != nil {
					t.Fatal(err)
				}
				lastSingle = d
			}
			res, err := batched.ServeBatch(context.Background(), tc.seq.Requests)
			if err != nil {
				t.Fatal(err)
			}

			if res.FirstRejected != -1 || len(res.Decisions) != tc.seq.N() {
				t.Fatalf("batch result %+v, want all %d applied", res, tc.seq.N())
			}
			if res.Cost != single.Cost() || res.Optimal != single.OptimalCost() || res.Ratio != single.Ratio() {
				t.Errorf("batch snapshot (%v, %v, %v) != sequential (%v, %v, %v)",
					res.Cost, res.Optimal, res.Ratio, single.Cost(), single.OptimalCost(), single.Ratio())
			}
			if last := res.Decisions[len(res.Decisions)-1]; last != lastSingle {
				t.Errorf("last batch decision %+v != last single decision %+v", last, lastSingle)
			}
			if batched.N() != single.N() || batched.Hits() != single.Hits() || batched.Transfers() != single.Transfers() {
				t.Errorf("counters (n=%d h=%d x=%d) != sequential (n=%d h=%d x=%d)",
					batched.N(), batched.Hits(), batched.Transfers(),
					single.N(), single.Hits(), single.Transfers())
			}
			if !reflect.DeepEqual(batched.Trace(), single.Trace()) {
				t.Error("trace rings diverge between batch and sequential serving")
			}
			bs, ss := batched.SLO(), single.SLO()
			if bs.N() != ss.N() || bs.WindowedRatio() != ss.WindowedRatio() ||
				bs.CumulativeRatio() != ss.CumulativeRatio() || bs.EWMA() != ss.EWMA() {
				t.Errorf("SLO state diverges: batch (n=%d w=%v c=%v e=%v) vs sequential (n=%d w=%v c=%v e=%v)",
					bs.N(), bs.WindowedRatio(), bs.CumulativeRatio(), bs.EWMA(),
					ss.N(), ss.WindowedRatio(), ss.CumulativeRatio(), ss.EWMA())
			}
			if !reflect.DeepEqual(batched.Schedule(), single.Schedule()) {
				t.Error("schedules diverge between batch and sequential serving")
			}
		})
	}
}

func TestServeBatchEmpty(t *testing.T) {
	sess, err := datacache.NewSession(3, 1, datacache.CostModel{Mu: 1, Lambda: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.ServeBatch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 || res.FirstRejected != -1 || res.Cost != 0 {
		t.Errorf("empty batch result %+v", res)
	}
}

func TestServeBatchPartial(t *testing.T) {
	sess, err := datacache.NewSession(3, 1, datacache.CostModel{Mu: 1, Lambda: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []datacache.Request{
		{Server: 2, Time: 1},
		{Server: 3, Time: 2},
		{Server: 1, Time: 1.5}, // non-monotonic — rejected
		{Server: 2, Time: 3},   // never reached
	}
	res, err := sess.ServeBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err) // partial failure is reported in the result, not an error
	}
	if res.FirstRejected != 2 || res.RejectReason == "" || len(res.Decisions) != 2 {
		t.Fatalf("partial result %+v, want firstRejected=2 with 2 decisions", res)
	}
	if sess.N() != 2 {
		t.Errorf("session advanced to n=%d, want the 2-request prefix", sess.N())
	}
	// The session still serves forward from the applied prefix.
	if _, err := sess.Serve(1, 2.5); err != nil {
		t.Errorf("serve after partial batch: %v", err)
	}
}

func TestServeBatchClosed(t *testing.T) {
	sess, err := datacache.NewSession(3, 1, datacache.CostModel{Mu: 1, Lambda: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ServeBatch(context.Background(), []datacache.Request{{Server: 2, Time: 1}}); err == nil {
		t.Fatal("batch against a closed session must error")
	}
}

func TestServeBatchContextCancel(t *testing.T) {
	sess, err := datacache.NewSession(3, 1, datacache.CostModel{Mu: 1, Lambda: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sess.ServeBatch(ctx, []datacache.Request{{Server: 2, Time: 1}})
	if err == nil {
		t.Fatal("batch under a canceled context must return the context error")
	}
	if res == nil || len(res.Decisions) != 0 {
		t.Fatalf("canceled batch result %+v, want empty partial snapshot", res)
	}
	if sess.N() != 0 {
		t.Errorf("canceled batch advanced the session to n=%d", sess.N())
	}
}
