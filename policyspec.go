package datacache

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"datacache/internal/engine"
	"datacache/internal/planner"
)

// PolicySpec is the one policy grammar: it names a caching policy and
// its parameters, and is used both for the live policy a Session or
// Pool serves with and for the counterfactual shadows it evaluates.
// The zero Policy means "sc"; Label overrides the metric/report label,
// which otherwise is the canonical Spec() rendering ("sc",
// "ttl:window=0.5", "sc:epoch=16", "hybrid:horizon=8,order=2", ...).
//
// Supported policies:
//
//	sc          speculative caching, the paper's 3-competitive online
//	            policy; window defaults to Δ = λ/μ; epoch=N restarts
//	            every N transfers
//	ttl         sc with a mandatory explicit window
//	migrate     single copy following the requests
//	replicate   copy everywhere, never drop
//	hybrid      prediction-fed planner: SC fallback plus an offline DP
//	            plan over the predicted next horizon requests
//	            (horizon=K, order=k tune it; see internal/planner)
type PolicySpec struct {
	Policy         string
	Window         float64
	EpochTransfers int
	Horizon        int // hybrid: rolling plan depth (requests)
	Order          int // hybrid: Markov predictor order
	Label          string
}

// ShadowPolicy is the former name of PolicySpec, kept as an alias for
// existing callers; shadows and live policies share one grammar now.
type ShadowPolicy = PolicySpec

// Spec renders the canonical spec string — a fixed point of
// ParsePolicySpec: parsing a canonical rendering yields a spec that
// renders identically.
func (sp PolicySpec) Spec() string {
	switch sp.Policy {
	case "", "sc":
		s := "sc"
		if sp.Window > 0 {
			s += fmt.Sprintf(":window=%g", sp.Window)
		}
		if sp.EpochTransfers > 0 {
			s += fmt.Sprintf(":epoch=%d", sp.EpochTransfers)
		}
		return s
	case "ttl":
		return fmt.Sprintf("ttl:window=%g", sp.Window)
	case "hybrid":
		var kv []string
		if sp.Horizon > 0 {
			kv = append(kv, fmt.Sprintf("horizon=%d", sp.Horizon))
		}
		if sp.Order > 0 {
			kv = append(kv, fmt.Sprintf("order=%d", sp.Order))
		}
		if sp.Window > 0 {
			kv = append(kv, fmt.Sprintf("window=%g", sp.Window))
		}
		if sp.EpochTransfers > 0 {
			kv = append(kv, fmt.Sprintf("epoch=%d", sp.EpochTransfers))
		}
		if len(kv) == 0 {
			return "hybrid"
		}
		return "hybrid:" + strings.Join(kv, ",")
	default:
		return sp.Policy
	}
}

// label is the name the spec's standings and metric series use.
func (sp PolicySpec) label() string {
	if sp.Label != "" {
		return sp.Label
	}
	return sp.Spec()
}

// name is the bare policy name the spec resolves to ("sc", "ttl",
// "migrate", "replicate", "hybrid").
func (sp PolicySpec) name() string {
	switch sp.Policy {
	case "":
		return "sc"
	case "keep":
		return "replicate"
	default:
		return sp.Policy
	}
}

// decider builds the engine decider the spec names — the same
// construction whether it serves live or runs as a shadow.
func (sp PolicySpec) decider() (engine.Decider, error) {
	if sp.Policy != "hybrid" && (sp.Horizon != 0 || sp.Order != 0) {
		return nil, fmt.Errorf("datacache: policy %q does not take horizon/order", sp.name())
	}
	switch sp.Policy {
	case "", "sc":
		return &engine.SC{Window: sp.Window, EpochTransfers: sp.EpochTransfers}, nil
	case "ttl":
		if sp.Window <= 0 {
			return nil, fmt.Errorf("datacache: ttl policy requires window > 0")
		}
		return &engine.SC{Window: sp.Window}, nil
	case "migrate":
		return &engine.Migrate{}, nil
	case "replicate", "keep":
		return &engine.Replicate{}, nil
	case "hybrid":
		return &planner.Hybrid{
			Horizon:        sp.Horizon,
			Order:          sp.Order,
			Window:         sp.Window,
			EpochTransfers: sp.EpochTransfers,
		}, nil
	default:
		return nil, fmt.Errorf("datacache: unknown policy %q", sp.Policy)
	}
}

// ParsePolicySpec parses one policy spec of the form
// "kind[:key=value[,key=value...]...]": "sc", "sc:window=1.5",
// "sc:epoch=16", "ttl:window=0.5", "migrate", "replicate",
// "hybrid:horizon=8,order=2". Key=value pairs may be separated by ","
// within a ":" segment or by further ":" segments; both spellings
// parse identically.
func ParsePolicySpec(spec string) (PolicySpec, error) {
	sp, err := parsePolicySpec(spec)
	if err != nil {
		return sp, err
	}
	// Validate the policy name and its parameters eagerly so a bad spec
	// fails at parse time, not at session create.
	if _, err := sp.decider(); err != nil {
		return sp, err
	}
	return sp, nil
}

// parsePolicySpec is the grammar without the decider validation —
// NewSession merges option-level Window/EpochTransfers into the parsed
// spec before validating, so a bare "ttl" with Window in the options
// must survive parsing.
func parsePolicySpec(spec string) (PolicySpec, error) {
	parts := strings.Split(spec, ":")
	sp := PolicySpec{Policy: strings.TrimSpace(parts[0])}
	if sp.Policy == "" {
		return sp, fmt.Errorf("datacache: empty policy spec %q", spec)
	}
	for _, seg := range parts[1:] {
		for _, kv := range strings.Split(seg, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return sp, fmt.Errorf("datacache: policy spec %q: %q is not key=value", spec, kv)
			}
			switch key {
			case "window":
				w, err := strconv.ParseFloat(val, 64)
				// The explicit NaN test matters: NaN fails w <= 0 too.
				if err != nil || w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return sp, fmt.Errorf("datacache: policy spec %q: bad window %q", spec, val)
				}
				sp.Window = w
			case "epoch":
				e, err := strconv.Atoi(val)
				if err != nil || e < 1 {
					return sp, fmt.Errorf("datacache: policy spec %q: bad epoch %q", spec, val)
				}
				sp.EpochTransfers = e
			case "horizon":
				h, err := strconv.Atoi(val)
				if err != nil || h < 1 {
					return sp, fmt.Errorf("datacache: policy spec %q: bad horizon %q", spec, val)
				}
				sp.Horizon = h
			case "order":
				o, err := strconv.Atoi(val)
				if err != nil || o < 1 {
					return sp, fmt.Errorf("datacache: policy spec %q: bad order %q", spec, val)
				}
				sp.Order = o
			default:
				return sp, fmt.Errorf("datacache: policy spec %q: unknown key %q", spec, key)
			}
		}
	}
	return sp, nil
}

// ParseShadowPolicy parses one policy spec.
//
// Deprecated: shadows and live policies share one grammar; use
// ParsePolicySpec.
func ParseShadowPolicy(spec string) (ShadowPolicy, error) {
	return ParsePolicySpec(spec)
}

// WithShadowPolicies parses policy specs into the ShadowPolicies option
// — the one-liner for wiring counterfactual policies into a Session or
// a Pool's session template:
//
//	opts.ShadowPolicies, err = datacache.WithShadowPolicies("ttl:window=1", "migrate")
func WithShadowPolicies(specs ...string) ([]PolicySpec, error) {
	out := make([]PolicySpec, 0, len(specs))
	for _, spec := range specs {
		sp, err := ParsePolicySpec(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, sp)
	}
	return out, nil
}
