// Command dcbench regenerates the paper's tables and figures (see
// DESIGN.md §3 and EXPERIMENTS.md for the index).
//
// Usage:
//
//	dcbench all                # every experiment with modest sizes
//	dcbench table1             # E1: classic vs cloud caching paradigms
//	dcbench fig2 | fig6 | fig7 # E2-E4: the paper's worked examples
//	dcbench complexity         # E5: FastDP vs NaiveDP scaling
//	dcbench ratio              # E6: competitive ratio sweep
//	dcbench policies           # E7: policy comparison
//	dcbench predict            # E8: trajectory prediction planning
//	dcbench hetero             # E9: heterogeneous-cost regret
//	dcbench replication        # E10: value-of-replication ablation
//	dcbench window             # E11: retention-window ablation (incl. AdaptiveTTL)
//	dcbench epoch              # E12: epoch-size ablation
//	dcbench budget             # E13: copy-budget sweep (capacity re-imposed)
//	dcbench sweep              # seeded-replica stability sweep of all policies
//	dcbench faults             # E14: fault injection and β-upload economics
//	dcbench perf -json         # serving-path perf snapshot (BENCH_*.json)
//	dcbench perf -json -baseline BENCH_pr6.json  # + regression gate
//
// perf times the serving hot loops — single-item session (plain, with
// the flight recorder attached, with the metrics-history sampler live,
// and with shadow policies), multi-item pool (unbounded, batched,
// bounded with eviction churn) and the offline DP — and with -json
// emits the snapshot committed as BENCH_pr<N>.json to track the perf
// trajectory across PRs. Every sweep also records allocs/op per loop
// and asserts that the recorded and sampled serve loops each stay
// within 5% of the plain one. With -baseline it additionally
// compares each loop's ns/op and allocs/op against the named committed
// snapshot, prints the comparison table to stderr, and exits non-zero
// when any shared hot loop regressed past the gate (+25% ns/op, +10%
// allocs/op) — the CI bench-smoke gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"datacache/internal/experiments"
	"datacache/internal/model"
	"datacache/internal/online"
	"datacache/internal/service"
	"datacache/internal/sweep"
	"datacache/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed for all experiments")
		n        = flag.Int("n", 2000, "workload size for ratio/policy experiments")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON (perf only)")
		perfOps  = flag.Int("perf-n", 50000, "requests per hot loop for the perf snapshot")
		baseline = flag.String("baseline", "", "perf only: committed BENCH_*.json to compare against; exit non-zero on >25% ns/op or >10% allocs/op regression of any shared hot loop")
	)
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *version {
		fmt.Println("dcbench " + service.Version)
		return
	}
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}

	var (
		reps []*experiments.Report
		err  error
	)
	switch cmd {
	case "perf":
		if err := runPerf(*seed, *perfOps, *asJSON, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "dcbench:", err)
			os.Exit(1)
		}
		return
	case "all":
		reps, err = experiments.All(*seed)
	case "table1":
		reps, err = one(experiments.Table1(*seed))
	case "fig2":
		reps, err = one(experiments.Fig2())
	case "fig6":
		reps, err = one(experiments.Fig6())
	case "fig7":
		reps, err = one(experiments.Fig7(*seed))
	case "complexity":
		reps, err = one(experiments.Complexity(experiments.DefaultComplexity, *seed))
	case "ratio":
		reps, err = one(experiments.Ratio(*seed, *n))
	case "policies":
		reps, err = one(experiments.Policies(*seed, *n))
	case "predict":
		reps, err = one(experiments.Predict(*seed, *n/4))
	case "hetero":
		reps, err = one(experiments.Hetero(*seed))
	case "replication":
		reps, err = one(experiments.Replication(*seed, *n))
	case "window":
		reps, err = one(experiments.Window(*seed, *n))
	case "epoch":
		reps, err = one(experiments.Epoch(*seed, *n))
	case "budget":
		reps, err = one(experiments.Budget(*seed, *n/4))
	case "sweep":
		reps, err = one(sweepReport(*seed, *n))
	case "faults":
		reps, err = one(experiments.Faults(*seed, *n))
	default:
		fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	for _, rep := range reps {
		fmt.Println(rep.String())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcbench:", err)
		os.Exit(1)
	}
}

func one(rep *experiments.Report, err error) ([]*experiments.Report, error) {
	if err != nil {
		return nil, err
	}
	return []*experiments.Report{rep}, nil
}

// sweepReport runs the seeded-replica sweep: every policy on every workload
// family and cost ratio, 10 seeds per cell, reporting mean/std/worst ratio.
func sweepReport(seed int64, n int) (*experiments.Report, error) {
	cm := model.Unit
	seeds := make([]int64, 10)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	aggs, err := sweep.Run(sweep.Config{
		Workloads: workload.Standard(8, cm.Delta()),
		Policies: []online.Runner{
			online.SpeculativeCaching{},
			online.AdaptiveTTL{},
			online.RandomizedSC{},
			online.AlwaysMigrate{},
			online.KeepEverywhere{},
		},
		Models: []model.CostModel{{Mu: 1, Lambda: 0.5}, model.Unit, {Mu: 1, Lambda: 4}},
		Seeds:  seeds,
		N:      n,
	})
	if err != nil {
		return nil, err
	}
	return &experiments.Report{
		ID:    "Sweep",
		Title: "Seeded-replica policy sweep (10 seeds per cell)",
		Table: sweep.Table(aggs),
	}, nil
}
