package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"datacache"
	"datacache/internal/model"
	"datacache/internal/obs"
	"datacache/internal/obs/tsdb"
	"datacache/internal/recorder"
)

// perfSnapshot is the committed perf-trajectory record (BENCH_pr6.json
// and successors): one wall-clock measurement per serving-path hot loop,
// taken on whatever machine ran it — the point is the trajectory across
// PRs on the same CI hardware, not absolute numbers.
type perfSnapshot struct {
	Schema  string       `json:"schema"` // "dcbench-perf/v1"
	Go      string       `json:"go"`
	Arch    string       `json:"arch"`
	Seed    int64        `json:"seed"`
	Results []perfResult `json:"results"`
}

type perfResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

// perfSweep times the serving hot paths: the single-item session loop
// (plain, with the flight recorder attached, and with shadow policies),
// the multi-item pool (unbounded, batch-grouped, and bounded with
// eviction churn) and the offline DP. Each loop serves the same seeded
// zipf traffic so numbers are comparable across runs, and each records
// its allocation rate alongside wall time.
func perfSweep(seed int64, n int) (*perfSnapshot, error) {
	const (
		m        = 16
		items    = 256
		batch    = 64
		maxItems = 64
	)
	snap := &perfSnapshot{
		Schema: "dcbench-perf/v1",
		Go:     runtime.Version(),
		Arch:   runtime.GOOS + "/" + runtime.GOARCH,
		Seed:   seed,
	}

	rng := rand.New(rand.NewSource(seed))
	zipfSrv := rand.NewZipf(rng, 1.2, 1, uint64(m-1))
	zipfItem := rand.NewZipf(rng, 1.2, 1, uint64(items-1))
	reqs := make([]datacache.PoolRequest, n)
	for i := range reqs {
		reqs[i] = datacache.PoolRequest{
			Item:   fmt.Sprintf("item-%d", zipfItem.Uint64()),
			Server: datacache.ServerID(1 + zipfSrv.Uint64()),
			Time:   float64(i+1) * 0.1,
		}
	}

	// timeLoopN runs f reps times and keeps the fastest repetition —
	// best-of-N suppresses scheduler noise where two loops are compared
	// against each other in the same sweep (the recorder-overhead gate).
	timeLoopN := func(name, note string, ops, reps int, f func() error) error {
		var best perfResult
		for rep := 0; rep < reps; rep++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if err := f(); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			el := time.Since(start)
			runtime.ReadMemStats(&after)
			r := perfResult{
				Name:        name,
				N:           ops,
				NsPerOp:     float64(el.Nanoseconds()) / float64(ops),
				OpsPerSec:   float64(ops) / el.Seconds(),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
				Note:        note,
			}
			if rep == 0 || r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		snap.Results = append(snap.Results, best)
		return nil
	}
	timeLoop := func(name, note string, ops int, f func() error) error {
		return timeLoopN(name, note, ops, 1, f)
	}

	// serveReps: the loops feeding the recorder- and sampler-overhead
	// gates run best-of-3 so a single noisy repetition can't fake a >5%
	// delta.
	const serveReps = 3

	if err := timeLoopN("session/serve", fmt.Sprintf("single item, m=%d, zipf servers", m), n, serveReps, func() error {
		s, err := datacache.NewSession(m, 1, datacache.Unit, nil)
		if err != nil {
			return err
		}
		for _, r := range reqs {
			if _, err := s.Serve(r.Server, r.Time); err != nil {
				return err
			}
		}
		_, err = s.Close()
		return err
	}); err != nil {
		return nil, err
	}

	recDir, err := os.MkdirTemp("", "dcbench-rec")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(recDir)
	if err := timeLoopN("session/serve_recorded", fmt.Sprintf("single item, m=%d, flight recorder attached (async binary WAL)", m), n, serveReps, func() error {
		w, err := recorder.NewWriter(recorder.Options{Dir: recDir, Source: "dcbench"})
		if err != nil {
			return err
		}
		s, err := datacache.NewSession(m, 1, datacache.Unit, &datacache.SessionOptions{Recorder: w, RecordSession: "bench"})
		if err != nil {
			return err
		}
		for _, r := range reqs {
			if _, err := s.Serve(r.Server, r.Time); err != nil {
				return err
			}
		}
		if _, err := s.Close(); err != nil {
			return err
		}
		return w.Close()
	}); err != nil {
		return nil, err
	}

	if err := timeLoopN("session/serve_sampled", fmt.Sprintf("single item, m=%d, per-serve metrics + live tsdb sampler at 1ms", m), n, serveReps, func() error {
		// The serving path as the service runs it under the metrics
		// history: every serve updates a counter, a gauge and a latency
		// histogram on a shared registry while a tsdb sampler walks that
		// registry concurrently — sampled here at 1ms, three orders of
		// magnitude hotter than the 1s production cadence, so the lock
		// contention the gate bounds is actually exercised within the
		// loop's short wall time.
		reg := obs.NewRegistry()
		servedC := reg.Counter("bench_requests_total", "requests served")
		ratioG := reg.Gauge("bench_windowed_ratio", "running competitive ratio")
		latH := reg.Histogram("bench_decision_seconds", "decision latency",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2})
		store := tsdb.New(reg, tsdb.Options{Interval: time.Millisecond})
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					store.Sample()
				}
			}
		}()
		defer func() { close(done); wg.Wait() }()
		s, err := datacache.NewSession(m, 1, datacache.Unit, nil)
		if err != nil {
			return err
		}
		for _, r := range reqs {
			t0 := time.Now()
			dec, err := s.Serve(r.Server, r.Time)
			if err != nil {
				return err
			}
			servedC.Add(1)
			ratioG.Set(dec.Ratio)
			latH.Observe(time.Since(t0).Seconds())
		}
		_, err = s.Close()
		return err
	}); err != nil {
		return nil, err
	}

	if err := timeLoop("session/serve_shadow", fmt.Sprintf("single item, m=%d, 4 shadow policies in lockstep", m), n, func() error {
		shadows, err := datacache.WithShadowPolicies("ttl:window=1", "sc:epoch=16", "migrate", "replicate")
		if err != nil {
			return err
		}
		s, err := datacache.NewSession(m, 1, datacache.Unit, &datacache.SessionOptions{ShadowPolicies: shadows})
		if err != nil {
			return err
		}
		for _, r := range reqs {
			if _, err := s.Serve(r.Server, r.Time); err != nil {
				return err
			}
		}
		_, err = s.Close()
		return err
	}); err != nil {
		return nil, err
	}

	if err := timeLoop("session/serve_hybrid", fmt.Sprintf("single item, m=%d, hybrid planner (horizon=8, order=2) + implicit sc shadow", m), n, func() error {
		s, err := datacache.NewSession(m, 1, datacache.Unit, &datacache.SessionOptions{Policy: "hybrid:horizon=8,order=2"})
		if err != nil {
			return err
		}
		for _, r := range reqs {
			if _, err := s.Serve(r.Server, r.Time); err != nil {
				return err
			}
		}
		_, err = s.Close()
		return err
	}); err != nil {
		return nil, err
	}

	if err := timeLoop("pool/serve", fmt.Sprintf("%d items zipf(1.2), unbounded, single path", items), n, func() error {
		p, err := datacache.NewPool(m, 1, datacache.Unit, nil)
		if err != nil {
			return err
		}
		for _, r := range reqs {
			if _, err := p.Serve("", r.Item, r.Server, r.Time); err != nil {
				return err
			}
		}
		return p.Close()
	}); err != nil {
		return nil, err
	}

	if err := timeLoop("pool/serve_batch", fmt.Sprintf("%d items zipf(1.2), batch=%d grouped by item", items, batch), n, func() error {
		p, err := datacache.NewPool(m, 1, datacache.Unit, nil)
		if err != nil {
			return err
		}
		for lo := 0; lo < len(reqs); lo += batch {
			hi := lo + batch
			if hi > len(reqs) {
				hi = len(reqs)
			}
			if _, err := p.ServeBatch(nil, reqs[lo:hi]); err != nil {
				return err
			}
		}
		return p.Close()
	}); err != nil {
		return nil, err
	}

	if err := timeLoop("pool/serve_bounded", fmt.Sprintf("%d items, MaxItems=%d (LRU eviction churn)", items, maxItems), n, func() error {
		p, err := datacache.NewPool(m, 1, datacache.Unit, &datacache.PoolOptions{MaxItems: maxItems})
		if err != nil {
			return err
		}
		for _, r := range reqs {
			if _, err := p.Serve("", r.Item, r.Server, r.Time); err != nil {
				return err
			}
		}
		return p.Close()
	}); err != nil {
		return nil, err
	}

	dpN := n
	if dpN > 2000 {
		dpN = 2000
	}
	seq := &model.Sequence{M: m, Origin: 1}
	for i := 0; i < dpN; i++ {
		seq.Requests = append(seq.Requests, model.Request{
			Server: model.ServerID(1 + zipfSrv.Uint64()),
			Time:   float64(i+1) * 0.1,
		})
	}
	if err := timeLoop("offline/fastdp", fmt.Sprintf("FastDP optimum, m=%d", m), dpN, func() error {
		_, err := datacache.Optimize(seq, datacache.Unit)
		return err
	}); err != nil {
		return nil, err
	}

	return snap, nil
}

// perfRegressionLimit is the gate -baseline enforces: a shared hot loop
// may be at most 25% slower (ns/op) than the committed snapshot.
const perfRegressionLimit = 1.25

// allocRegressionLimit is the allocation gate -baseline enforces: a
// shared hot loop may allocate at most 10% more per op than the
// committed snapshot (with a 2 alloc/op absolute slack so near-zero
// loops don't flap on measurement noise). Snapshots written before
// allocs were recorded carry 0 and are exempt.
const allocRegressionLimit = 1.10

// recorderOverheadLimit bounds what attaching the flight recorder may
// cost the single-item serve path: session/serve_recorded must stay
// within 5% of session/serve ns/op. Checked on every sweep, not just
// against a baseline, because both sides are measured in the same run.
const recorderOverheadLimit = 1.05

// checkRecorderOverhead enforces recorderOverheadLimit on a fresh
// sweep.
func checkRecorderOverhead(snap *perfSnapshot) error {
	var plain, recorded float64
	for _, r := range snap.Results {
		switch r.Name {
		case "session/serve":
			plain = r.NsPerOp
		case "session/serve_recorded":
			recorded = r.NsPerOp
		}
	}
	if plain == 0 || recorded == 0 {
		return nil
	}
	if ratio := recorded / plain; ratio > recorderOverheadLimit {
		return fmt.Errorf("recorder overhead %.1f%% exceeds %.0f%% (plain %.0f ns/op, recorded %.0f ns/op)",
			(ratio-1)*100, (recorderOverheadLimit-1)*100, plain, recorded)
	}
	return nil
}

// samplerOverheadLimit bounds what the metrics-history sampler may cost
// the single-item serve path: session/serve_sampled must stay within 5%
// of session/serve ns/op, even with the sampler running 1000x hotter
// than production. Checked on every sweep, like the recorder gate.
const samplerOverheadLimit = 1.05

// checkSamplerOverhead enforces samplerOverheadLimit on a fresh sweep.
func checkSamplerOverhead(snap *perfSnapshot) error {
	var plain, sampled float64
	for _, r := range snap.Results {
		switch r.Name {
		case "session/serve":
			plain = r.NsPerOp
		case "session/serve_sampled":
			sampled = r.NsPerOp
		}
	}
	if plain == 0 || sampled == 0 {
		return nil
	}
	if ratio := sampled / plain; ratio > samplerOverheadLimit {
		return fmt.Errorf("sampler overhead %.1f%% exceeds %.0f%% (plain %.0f ns/op, sampled %.0f ns/op)",
			(ratio-1)*100, (samplerOverheadLimit-1)*100, plain, sampled)
	}
	return nil
}

// runPerf executes the sweep and prints it as JSON (-json) or a table.
// With a baseline snapshot path it additionally prints a comparison
// table to stderr and fails on any >25% ns/op regression.
func runPerf(seed int64, n int, asJSON bool, baseline string) error {
	snap, err := perfSweep(seed, n)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return err
		}
	} else {
		fmt.Printf("== Perf: serving-path hot loops (%s, %s, seed %d) ==\n", snap.Go, snap.Arch, snap.Seed)
		fmt.Printf("%-22s %9s %12s %14s %11s  %s\n", "benchmark", "ops", "ns/op", "ops/sec", "allocs/op", "note")
		for _, r := range snap.Results {
			fmt.Printf("%-22s %9d %12.0f %14.0f %11.1f  %s\n", r.Name, r.N, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp, r.Note)
		}
		fmt.Println(strings.Repeat("-", 60))
	}
	if err := checkRecorderOverhead(snap); err != nil {
		return err
	}
	if err := checkSamplerOverhead(snap); err != nil {
		return err
	}
	if baseline == "" {
		return nil
	}
	return comparePerf(snap, baseline)
}

// comparePerf gates the fresh sweep against a committed snapshot. Loops
// only one side knows are reported but never gate (renames and new
// benchmarks must not fail CI); shared loops fail past the limit.
func comparePerf(snap *perfSnapshot, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base perfSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if base.Schema != snap.Schema {
		return fmt.Errorf("baseline %s has schema %q, want %q", baselinePath, base.Schema, snap.Schema)
	}
	baseBy := make(map[string]perfResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	fmt.Fprintf(os.Stderr, "== Perf vs baseline %s (gates: +%.0f%% ns/op, +%.0f%% allocs/op) ==\n",
		baselinePath, (perfRegressionLimit-1)*100, (allocRegressionLimit-1)*100)
	fmt.Fprintf(os.Stderr, "%-24s %12s %12s %9s %11s %11s %9s\n",
		"benchmark", "base ns/op", "head ns/op", "delta", "base alloc", "head alloc", "delta")
	var regressed []string
	for _, r := range snap.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-24s %12s %12.0f %9s %11s %11.1f %9s\n",
				r.Name, "-", r.NsPerOp, "new", "-", r.AllocsPerOp, "")
			continue
		}
		delete(baseBy, r.Name)
		ratio := r.NsPerOp / b.NsPerOp
		verdict := fmt.Sprintf("%+.1f%%", (ratio-1)*100)
		if ratio > perfRegressionLimit {
			verdict += " FAIL"
			regressed = append(regressed, fmt.Sprintf("%s (%.0f -> %.0f ns/op, %+.1f%%)",
				r.Name, b.NsPerOp, r.NsPerOp, (ratio-1)*100))
		}
		// Allocation gate: only when the baseline recorded allocs, with a
		// small absolute slack so near-zero loops don't flap.
		allocVerdict := "-"
		if b.AllocsPerOp > 0 {
			allocVerdict = fmt.Sprintf("%+.1f%%", (r.AllocsPerOp/b.AllocsPerOp-1)*100)
			if r.AllocsPerOp > b.AllocsPerOp*allocRegressionLimit && r.AllocsPerOp > b.AllocsPerOp+2 {
				allocVerdict += " FAIL"
				regressed = append(regressed, fmt.Sprintf("%s (%.1f -> %.1f allocs/op, %+.1f%%)",
					r.Name, b.AllocsPerOp, r.AllocsPerOp, (r.AllocsPerOp/b.AllocsPerOp-1)*100))
			}
		}
		fmt.Fprintf(os.Stderr, "%-24s %12.0f %12.0f %9s %11.1f %11.1f %9s\n",
			r.Name, b.NsPerOp, r.NsPerOp, verdict, b.AllocsPerOp, r.AllocsPerOp, allocVerdict)
	}
	for name := range baseBy {
		fmt.Fprintf(os.Stderr, "%-24s %12.0f %12s %9s\n", name, baseBy[name].NsPerOp, "-", "gone")
	}
	if len(regressed) > 0 {
		return fmt.Errorf("perf regression past the gate: %s", strings.Join(regressed, "; "))
	}
	return nil
}
