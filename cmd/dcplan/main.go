// Command dcplan prices a whole catalog of data items from an item-tagged
// event trace: the off-line optimum per item (in parallel), optionally the
// online bill under a per-item policy, and the catalog totals.
//
// Usage:
//
//	dcplan -in events.csv -mu 1 -lambda 2
//	dcplan -in events.csv -online sc
//
// The events format is one "item,server,time" row per request under a
// "#datacache-events m=<m>" header; see internal/trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"datacache/internal/model"
	"datacache/internal/multi"
	"datacache/internal/online"
	"datacache/internal/service"
	"datacache/internal/stats"
	"datacache/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input events file (default stdin)")
		mu       = flag.Float64("mu", 1, "caching cost per unit time (μ)")
		lambda   = flag.Float64("lambda", 1, "transfer cost (λ)")
		onlineBy = flag.String("online", "", "also serve each item online: sc|adaptive|migrate|keep")
		workers  = flag.Int("workers", 0, "parallel planners (0 = GOMAXPROCS)")
	)
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *version {
		fmt.Println("dcplan " + service.Version)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	m, events, err := trace.ReadEventsCSV(r)
	if err != nil {
		fatal(err)
	}
	cat := &multi.Catalog{M: m, Default: model.CostModel{Mu: *mu, Lambda: *lambda}}

	reports, total, err := multi.Plan(cat, events, *workers)
	if err != nil {
		fatal(err)
	}
	table := &stats.Table{Header: []string{"item", "requests", "planned bill"}}
	var serveReports []multi.ServeReport
	var serveTotal float64
	if *onlineBy != "" {
		table.Header = append(table.Header, "online bill", "online/planned")
		serveReports, serveTotal, err = multi.Serve(cat, events, func() online.Runner {
			p, err := pick(*onlineBy)
			if err != nil {
				fatal(err)
			}
			return p
		})
		if err != nil {
			fatal(err)
		}
	}
	for i, rep := range reports {
		row := []interface{}{rep.Item, rep.Requests, rep.Cost}
		if serveReports != nil {
			row = append(row, serveReports[i].Stats.Cost, serveReports[i].Stats.Cost/rep.Cost)
		}
		table.Add(row...)
	}
	totalRow := []interface{}{"TOTAL", len(events), total}
	if serveReports != nil {
		totalRow = append(totalRow, serveTotal, serveTotal/total)
	}
	table.Add(totalRow...)
	fmt.Print(table.String())
	if serveReports != nil {
		fmt.Printf("composed guarantee serve <= 3*plan holds: %v\n",
			multi.CompetitiveGuarantee(total, serveTotal, 3))
	}
}

func pick(name string) (online.Runner, error) {
	switch strings.ToLower(name) {
	case "sc":
		return online.SpeculativeCaching{}, nil
	case "adaptive":
		return online.AdaptiveTTL{}, nil
	case "migrate":
		return online.AlwaysMigrate{}, nil
	case "keep":
		return online.KeepEverywhere{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcplan:", err)
	os.Exit(1)
}
