// Command dcserved runs the data-caching planning service over HTTP.
//
// Usage:
//
//	dcserved -addr :8080
//	dcserved -addr :8080 -log-format json -log-level debug -pprof :6060
//
// Endpoints (JSON bodies unless noted):
//
//	GET  /healthz                     liveness
//	GET  /metrics                     Prometheus text-format metrics
//	GET  /v1/metrics/history          windowed aggregates from the embedded metrics history (series, window, step, agg, end, limit)
//	GET  /metricz                     retired (410 Gone since 1.8.0); scrape /metrics
//	POST /v1/optimize                 {sequence, model, schedule?, vectors?} → optimum + bounds
//	POST /v1/simulate                 {sequence, model, policy, window?, epoch?} → cost vs optimum
//	POST /v1/generate                 {workload, m, n, seed, gap?} → sequence
//	GET  /v1/policies                 available policy names
//	POST /v1/stream                   {m, origin, model} → incremental planning stream
//	POST /v1/stream/{id}/append       {server, time} → updated optimum in O(m)
//	GET  /v1/stream/{id}              stream state
//	GET  /v1/stream/{id}/schedule     optimal schedule for the streamed prefix
//	DELETE /v1/stream/{id}            drop the stream
//	POST /v1/session                  {m, origin, model, policy?, window?, epoch?} → live serving session (201 + Location); policy is a PolicySpec ("sc", "ttl:window=0.5", "hybrid:horizon=8,order=2", ...)
//	POST /v1/session/{id}/request     {server, time} → decision + running cost/optimum/ratio
//	POST /v1/session/{id}/requests    {requests: [{server, t}]} or NDJSON lines → bulk decisions + post-batch snapshot
//	GET  /v1/session/{id}             session state
//	GET  /v1/session/{id}/schedule    schedule realized so far
//	GET  /v1/session/{id}/trace       bounded ring of recent decision events
//	GET  /v1/session/{id}/slo         windowed competitive ratio, alerts, per-server cost breakdown
//	GET  /v1/session/{id}/shadow      counterfactual shadow-policy standings
//	GET  /v1/pool/{id}/shadow         pool-wide counterfactual shadow-policy standings
//	DELETE /v1/session/{id}           close the session → final state + schedule
//	GET  /v1/alerts                   every live session's SLO alerts
//	GET  /v1/traces                   retained traces, highest summed regret first (filters: session, min_regret, min_duration, error, limit)
//	GET  /v1/traces/{id}              every span of one trace, local root first
//	GET  /v1/session/{id}/record      download the session's flight recording (404 without -record-dir)
//	GET  /v1/pool/{id}/record         download the pool's flight recording (404 without -record-dir)
//	GET  /readyz                      readiness (degraded while any alert is firing)
//
// With -record-dir set, every served request is appended to an
// append-only flight recording (binary WAL or NDJSON via -record-mode)
// that dcreplay can verify bit-for-bit and score against the offline
// optimum in hindsight. -record-sync picks the durability point
// (none|interval|always), -record-rotate-bytes/-record-rotate-age bound
// individual files.
//
// Every response carries an X-Request-Id header that also appears in the
// structured log and in JSON error bodies, and a Traceparent header tying
// it to the distributed trace (-trace-sample, -trace-regret, -span-cap,
// -span-export configure retention). The optional -pprof listener serves
// net/http/pprof on a separate address (keep it private).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"datacache/internal/obs"
	"datacache/internal/obs/tsdb"
	"datacache/internal/recorder"
	"datacache/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log format: text|json")
		pprofAddr = flag.String("pprof", "", "optional net/http/pprof listen address (e.g. localhost:6060); empty disables")
		traceCap  = flag.Int("trace-cap", service.DefaultTraceCap, "per-session decision-trace ring size (0 disables)")
		sloWindow = flag.Int("slo-window", service.DefaultSLOWindow, "per-session SLO rolling-window length in requests (0 disables)")
		inflight  = flag.Int("inflight-budget", service.DefaultInflightBudget, "per-session concurrent serve/batch budget before 429 shedding")
		shadowMgn = flag.Float64("shadow-margin", 0, "shadow_beats_live alert margin: fire when a shadow policy beats live windowed cost by this fraction (0 uses the default, negative disables)")
		noRuntime = flag.Bool("no-runtime-metrics", false, "disable Go runtime metrics on /metrics")
		sample    = flag.Float64("trace-sample", 1, "head-sampling probability for distributed traces in [0,1]; >=1 keeps all")
		traceSeed = flag.Int64("trace-seed", 0, "trace/span id seed (0 derives from the clock; fix it for reproducible ids)")
		spanCap   = flag.Int("span-cap", obs.DefaultSpanCap, "bounded in-memory span store size behind /v1/traces")
		regretMin = flag.Float64("trace-regret", 0, "always keep traces containing a span with regret >= this (0 disables the tail rule)")
		spanOut   = flag.String("span-export", "", "append every kept span as NDJSON to this file; empty disables")
		recDir    = flag.String("record-dir", "", "flight-recording directory; empty disables recording")
		recMode   = flag.String("record-mode", recorder.ModeBinary, "recording encoding: binary|ndjson")
		recSync   = flag.String("record-sync", "interval", "recording durability: none|interval|always")
		recSyncIv = flag.Duration("record-sync-interval", recorder.DefaultSyncInterval, "fsync cadence when -record-sync=interval")
		recRotB   = flag.Int64("record-rotate-bytes", 64<<20, "rotate recording files beyond this size (0 disables)")
		recRotAge = flag.Duration("record-rotate-age", 0, "rotate recording files older than this (0 disables)")
		histIv    = flag.Duration("history-interval", time.Second, "metrics-history sampling cadence (0 disables the background sampler; queries then sample lazily)")
		histStale = flag.Duration("history-stale", 0, "retire history series this long after their metric disappears (0 uses the 60s default)")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dcserved " + service.Version)
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("dcserved: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level, *logFormat)

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			srv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := srv.ListenAndServe(); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	seed := *traceSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	opts := []service.Option{
		service.WithLogger(logger),
		service.WithTraceCap(*traceCap),
		service.WithSLOWindow(*sloWindow),
		service.WithInflightBudget(*inflight),
		service.WithShadowMargin(*shadowMgn),
		service.WithTraceSampling(*sample),
		service.WithTraceSeed(seed),
		service.WithTraceRegret(*regretMin),
		service.WithSpanCap(*spanCap),
	}
	if *spanOut != "" {
		f, err := os.OpenFile(*spanOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("dcserved: opening span export %s: %v", *spanOut, err)
		}
		defer f.Close()
		opts = append(opts, service.WithSpanExporter(obs.NewNDJSONExporter(f)))
	}
	if *recDir != "" {
		rec, err := recorder.NewWriter(recorder.Options{
			Dir:          *recDir,
			Mode:         *recMode,
			Sync:         *recSync,
			SyncInterval: *recSyncIv,
			RotateBytes:  *recRotB,
			RotateAge:    *recRotAge,
			Source:       "dcserved/" + service.Version,
		})
		if err != nil {
			log.Fatalf("dcserved: opening flight recording: %v", err)
		}
		defer func() {
			if err := rec.Close(); err != nil {
				logger.Error("closing flight recording", "err", err)
			}
		}()
		logger.Info("flight recording enabled",
			"dir", *recDir, "mode", *recMode, "sync", *recSync)
		opts = append(opts, service.WithRecorder(rec))
	}
	if !*noRuntime {
		opts = append(opts, service.WithRuntimeMetrics())
	}
	histOpts := tsdb.Options{StaleAfter: *histStale}
	if *histIv > 0 {
		histOpts.Interval = *histIv
	}
	opts = append(opts, service.WithHistoryOptions(histOpts))
	handler := service.New(opts...)
	if *histIv > 0 {
		stop := handler.StartHistorySampler(*histIv)
		defer stop()
		logger.Info("metrics history sampling", "interval", *histIv)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("dcserved listening", "addr", *addr, "version", service.Version)
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}
