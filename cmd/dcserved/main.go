// Command dcserved runs the data-caching planning service over HTTP.
//
// Usage:
//
//	dcserved -addr :8080
//
// Endpoints (JSON bodies unless noted):
//
//	GET  /healthz                     liveness
//	POST /v1/optimize                 {sequence, model, schedule?, vectors?} → optimum + bounds
//	POST /v1/simulate                 {sequence, model, policy, window?, epoch?} → cost vs optimum
//	POST /v1/generate                 {workload, m, n, seed, gap?} → sequence
//	GET  /v1/policies                 available policy names
//	POST /v1/stream                   {m, origin, model} → incremental planning stream
//	POST /v1/stream/{id}/append       {server, time} → updated optimum in O(m)
//	GET  /v1/stream/{id}              stream state
//	GET  /v1/stream/{id}/schedule     optimal schedule for the streamed prefix
//	DELETE /v1/stream/{id}            drop the stream
//	POST /v1/session                  {m, origin, model, policy?, window?, epoch?} → live serving session
//	POST /v1/session/{id}/request     {server, time} → decision + running cost/optimum/ratio
//	GET  /v1/session/{id}             session state
//	GET  /v1/session/{id}/schedule    schedule realized so far
//	DELETE /v1/session/{id}           close the session → final state + schedule
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"datacache/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.New(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("dcserved: listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
