// Command dcgen generates request-sequence traces for the caching
// experiments and writes them in the CSV or JSON trace format.
//
// Usage:
//
//	dcgen -workload zipf -m 16 -n 10000 -seed 7 -gap 1.0 -o trace.csv
//
// Workloads: uniform, zipf, bursty, markov, commuter, adversarial.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"datacache/internal/model"
	"datacache/internal/service"
	"datacache/internal/trace"
	"datacache/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "uniform", "workload family: uniform|zipf|bursty|markov|commuter|adversarial")
		m      = flag.Int("m", 8, "number of servers")
		n      = flag.Int("n", 1000, "number of requests")
		seed   = flag.Int64("seed", 1, "random seed")
		gap    = flag.Float64("gap", 1.0, "mean inter-arrival time (interpreted per family)")
		zipfS  = flag.Float64("zipf-s", 1.5, "zipf exponent (zipf only)")
		stay   = flag.Float64("stay", 0.8, "stay probability (markov only)")
		burst  = flag.Int("burst", 8, "burst length (bursty only)")
		window = flag.Float64("window", 1.0, "speculative window to defeat (adversarial only)")
		format = flag.String("format", "csv", "output format: csv|json")
		out    = flag.String("o", "", "output file (default stdout)")
		show   = flag.Bool("stats", false, "print a workload summary to stderr")
	)
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *version {
		fmt.Println("dcgen " + service.Version)
		return
	}

	gen, err := pick(*name, *m, *gap, *zipfS, *stay, *burst, *window)
	if err != nil {
		fatal(err)
	}
	seq := gen.Generate(rand.New(rand.NewSource(*seed)), *n)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteSequence(w, *format, seq); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dcgen: wrote %d requests over %d servers (%s)\n", seq.N(), seq.M, gen.Name())
	if *show {
		st := model.AnalyzeSequence(seq)
		fmt.Fprintf(os.Stderr, "dcgen: horizon %.4g, mean gap %.4g, stay %.2f, busiest s%d (%.0f%%), median revisit %.4g, untouched %d\n",
			st.Horizon, st.MeanGap, st.StayFrac, st.Busiest, 100*st.TopShare, st.MedianRev, st.Untouched)
	}
}

func pick(name string, m int, gap, zipfS, stay float64, burst int, window float64) (workload.Generator, error) {
	switch strings.ToLower(name) {
	case "uniform":
		return workload.Uniform{M: m, MeanGap: gap}, nil
	case "zipf":
		return workload.Zipf{M: m, S: zipfS, MeanGap: gap}, nil
	case "bursty":
		return workload.Bursty{M: m, BurstLen: burst, WithinGap: gap / 4, BetweenGap: gap * 6}, nil
	case "markov":
		return workload.MarkovHop{M: m, Stay: stay, MeanGap: gap}, nil
	case "commuter":
		return workload.Commuter{
			M: m, Route: []model.ServerID{1, 2, 1, model.ServerID(min(3, m))},
			StopLen: 6, StopGap: gap / 4, TravelGap: gap * 4,
		}, nil
	case "adversarial":
		return workload.Adversarial{M: m, Window: window}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcgen:", err)
	os.Exit(1)
}
