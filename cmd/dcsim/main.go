// Command dcsim replays a request trace through an online caching policy
// and reports its cost against the off-line optimum.
//
// Usage:
//
//	dcgen -workload zipf -n 5000 | dcsim -policy sc
//	dcsim -in trace.csv -policy ttl -window 0.5
//	dcsim -in trace.csv -compare            # every policy side by side
//	dcsim -in trace.csv -trace              # dump the decision event stream
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"datacache/internal/engine"
	"datacache/internal/model"
	"datacache/internal/obs"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/service"
	"datacache/internal/stats"
	"datacache/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "", "input trace file (default stdin)")
		format  = flag.String("format", "csv", "input format: csv|json")
		mu      = flag.Float64("mu", 1, "caching cost per unit time (μ)")
		lambda  = flag.Float64("lambda", 1, "transfer cost (λ)")
		policy  = flag.String("policy", "sc", "policy: sc|ttl|adaptive|migrate|keep")
		window  = flag.Float64("window", 0, "TTL window override (ttl policy; 0 = λ/μ)")
		epoch   = flag.Int("epoch", 0, "SC epoch size in transfers (0 = unbounded)")
		compare = flag.Bool("compare", false, "run every policy and print a comparison table")
		metrics = flag.Bool("metrics", false, "print the per-server breakdown of the policy's schedule")
		dump    = flag.Bool("trace", false, "dump the decision event stream (requests, hits, transfers, drops, timer fires, epoch resets)")
	)
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *version {
		fmt.Println("dcsim " + service.Version)
		return
	}

	seq, err := readTrace(*in, *format)
	if err != nil {
		fatal(err)
	}
	cm := model.CostModel{Mu: *mu, Lambda: *lambda}

	opt, err := offline.FastDP(seq, cm)
	if err != nil {
		fatal(err)
	}

	if *compare {
		table := &stats.Table{Header: []string{"policy", "cost", "transfers", "hits", "cost/OPT"}}
		table.Add("OPT (offline)", opt.Cost(), "-", "-", 1.0)
		for _, p := range []online.Runner{
			online.SpeculativeCaching{EpochTransfers: *epoch},
			online.SpeculativeCaching{Window: cm.Delta() / 4},
			online.SpeculativeCaching{Window: cm.Delta() * 4},
			online.AdaptiveTTL{},
			online.AlwaysMigrate{},
			online.KeepEverywhere{},
		} {
			res, err := online.Run(p, seq, cm)
			if err != nil {
				fatal(err)
			}
			table.Add(p.Name(), res.Stats.Cost, res.Stats.Transfers, res.Stats.CacheHits,
				res.Stats.Cost/opt.Cost())
		}
		fmt.Print(table.String())
		return
	}

	p, err := pick(*policy, *window, *epoch)
	if err != nil {
		fatal(err)
	}
	res, err := online.Run(p, seq, cm)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("policy: %s over %d requests (m=%d, μ=%g, λ=%g)\n", p.Name(), seq.N(), seq.M, cm.Mu, cm.Lambda)
	fmt.Printf("cost: %.6g   transfers: %d   cache hits: %d\n", res.Stats.Cost, res.Stats.Transfers, res.Stats.CacheHits)
	fmt.Printf("offline optimum: %.6g   ratio: %.4f (SC bound: 3)\n", opt.Cost(), res.Stats.Cost/opt.Cost())
	if *metrics {
		table := &stats.Table{Header: []string{"server", "requests", "cache-served", "xfers in", "xfers out", "cached time", "utilization"}}
		for _, m := range model.Metrics(seq, res.Schedule) {
			table.Add(fmt.Sprintf("s%d", m.Server), m.Requests, m.CacheServed,
				m.TransfersIn, m.TransfersOut, m.CachedTime, m.Utilization)
		}
		fmt.Print(table.String())
	}
	if *dump {
		if err := dumpTrace(seq, cm, *policy, *window, *epoch); err != nil {
			fatal(err)
		}
	}
}

// dumpTrace replays the sequence through the engine decider behind the
// chosen policy with an observer attached, and prints the event stream —
// the exact schema /v1/session/{id}/trace serves for live traffic and the
// simulator's RunTraced records.
func dumpTrace(seq *model.Sequence, cm model.CostModel, policy string, window float64, epoch int) error {
	var d engine.Decider
	switch strings.ToLower(policy) {
	case "sc":
		d = &engine.SC{EpochTransfers: epoch}
	case "ttl":
		d = &engine.SC{Window: window}
	case "migrate":
		d = &engine.Migrate{}
	case "keep":
		d = &engine.Replicate{}
	default:
		return fmt.Errorf("-trace supports sc|ttl|migrate|keep, not %q", policy)
	}
	ring := &obs.Ring{} // unbounded: offline dumps want the full stream
	if sc, ok := d.(*engine.SC); ok {
		sc.OnReset = func(t float64, keep model.ServerID) {
			ring.Observe(obs.Event{At: t, Kind: obs.KindEpochReset, Server: int(keep)})
		}
	}
	st, err := engine.NewStream(d, engine.State{M: seq.M, Origin: seq.Origin, Model: cm})
	if err != nil {
		return err
	}
	st.SetObserver(ring)
	for _, r := range seq.Requests {
		if _, err := st.Serve(r.Server, r.Time); err != nil {
			return err
		}
	}
	if _, err := st.Finish(seq.End()); err != nil {
		return err
	}
	fmt.Printf("decision trace (%d events):\n", ring.Len())
	fmt.Print(ring.String())
	return nil
}

func pick(name string, window float64, epoch int) (online.Runner, error) {
	switch strings.ToLower(name) {
	case "sc":
		return online.SpeculativeCaching{EpochTransfers: epoch}, nil
	case "ttl":
		return online.SpeculativeCaching{Window: window}, nil
	case "adaptive":
		return online.AdaptiveTTL{}, nil
	case "migrate":
		return online.AlwaysMigrate{}, nil
	case "keep":
		return online.KeepEverywhere{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func readTrace(path, format string) (*model.Sequence, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadSequence(r, format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcsim:", err)
	os.Exit(1)
}
