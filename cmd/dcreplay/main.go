// Command dcreplay verifies and scores a flight recording produced by
// the recording serving stack (dcserved -record-dir, or the library's
// recorder.Writer):
//
//   - fidelity: every recorded stream replays through a fresh engine and
//     the re-computed cumulative cost and prefix optimum must match the
//     recording bit-for-bit. Any divergence is real — version skew, file
//     corruption, or a bug — and exits nonzero.
//   - hindsight: the exact offline DP runs over every (session, tenant,
//     item) key's full request stream, reporting the true
//     ratio-to-optimum per key, per tenant, per session and over a
//     rolling window — the number the online/offline comparison of the
//     paper is about, measured on production traffic.
//   - counterfactual: -shadows runs alternative policies over the same
//     traffic and reports the panel.
//   - export: -export-trace writes each key's reconstructed workload
//     sequence through the canonical trace serializer, ready to feed
//     back into dcsim/dcopt.
//
// Usage:
//
//	dcreplay -in /var/lib/dcserved/records
//	dcreplay -in rec.wal -json
//	dcreplay -in records/ -shadows migrate,replicate -max-ratio 3
//	dcreplay -in records/ -export-trace traces/ -trace-format csv
//
// Exit status: 0 on success, 1 on operational errors, 2 when bitwise
// verification fails, 3 when -max-ratio is set and any session, tenant
// or the total exceeds it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"datacache"
	"datacache/internal/recorder"
	"datacache/internal/service"
	"datacache/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "recording file or directory of rotated files (required)")
		window   = flag.Int("window", 0, "rolling hindsight-ratio window in requests (0 uses the library default)")
		shadows  = flag.String("shadows", "", "comma-separated shadow policy specs to run over the replayed traffic (e.g. sc,ttl:window=2,migrate)")
		maxRatio = flag.Float64("max-ratio", 0, "fail (exit 3) when any session, tenant or total hindsight ratio exceeds this (0 disables)")
		jsonOut  = flag.Bool("json", false, "emit the full report as JSON")
		expDir   = flag.String("export-trace", "", "write each key's reconstructed workload sequence to this directory (dcsim/dcopt input)")
		expFmt   = flag.String("trace-format", trace.FormatCSV, "trace export format: csv or json")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dcreplay " + service.Version)
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	opts := &datacache.ReplayOptions{Window: *window}
	if *shadows != "" {
		for _, s := range strings.Split(*shadows, ",") {
			if s = strings.TrimSpace(s); s != "" {
				opts.Shadows = append(opts.Shadows, s)
			}
		}
	}
	rep, err := datacache.ReplayPath(*in, opts)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		printReport(rep)
	}
	if *expDir != "" {
		n, err := exportTraces(*in, *expDir, *expFmt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dcreplay: exported %d workload trace(s) to %s\n", n, *expDir)
	}
	if !rep.BitwiseOK {
		fmt.Fprintln(os.Stderr, "dcreplay: FAIL: replay diverged from the recording")
		os.Exit(2)
	}
	if *maxRatio > 0 {
		if breach := ratioBreaches(rep, *maxRatio); breach != "" {
			fmt.Fprintf(os.Stderr, "dcreplay: FAIL: %s\n", breach)
			os.Exit(3)
		}
	}
}

// ratioBreaches returns a description of the first hindsight ratio above
// the bound, or "" when all hold.
func ratioBreaches(rep *datacache.ReplayReport, bound float64) string {
	if rep.Ratio > bound {
		return fmt.Sprintf("total hindsight ratio %.4f exceeds %.4f", rep.Ratio, bound)
	}
	for _, s := range rep.Sessions {
		if s.Ratio > bound {
			return fmt.Sprintf("session %s hindsight ratio %.4f exceeds %.4f", s.Session, s.Ratio, bound)
		}
	}
	for _, t := range rep.Tenants {
		if t.Ratio > bound {
			return fmt.Sprintf("tenant %q hindsight ratio %.4f exceeds %.4f", t.Tenant, t.Ratio, bound)
		}
	}
	return ""
}

func printReport(rep *datacache.ReplayReport) {
	verdict := "OK (bit-for-bit)"
	if !rep.BitwiseOK {
		verdict = "DIVERGED"
	}
	fmt.Printf("replayed %d records, %d streams, %d files — fidelity %s\n",
		rep.Records, len(rep.Streams), rep.Files, verdict)
	if rep.Truncated {
		fmt.Println("note: torn tail recovered — the recording ends mid-record (crash?); the durable prefix was replayed")
	}
	if rep.Partial > 0 {
		fmt.Printf("note: %d partial stream(s) counted but not verified (prefix files missing)\n", rep.Partial)
	}
	for _, s := range rep.Streams {
		if !s.Bitwise && !s.Partial {
			fmt.Printf("  stream %d (%s", s.Stream, s.Session)
			if s.Tenant != "" || s.Item != "" {
				fmt.Printf(" %s/%s", s.Tenant, s.Item)
			}
			fmt.Printf("): %d mismatch(es); first: %s\n", s.Mismatches, s.FirstDiff)
		}
	}
	fmt.Printf("hindsight: live %.6g vs clairvoyant optimum %.6g — ratio %.4f\n",
		rep.LiveCost, rep.HindsightOpt, rep.Ratio)
	fmt.Printf("rolling window (%d requests): final ratio %.4f, peak %.4f\n",
		rep.Window, rep.WindowRatio, rep.PeakWindowRatio)
	if len(rep.Sessions) > 1 {
		fmt.Println("per session:")
		for _, s := range rep.Sessions {
			fmt.Printf("  %-10s keys %-4d n %-6d live %-12.6g opt %-12.6g ratio %.4f\n",
				s.Session, s.Keys, s.N, s.LiveCost, s.HindsightOpt, s.Ratio)
		}
	}
	if len(rep.Tenants) > 1 || (len(rep.Tenants) == 1 && rep.Tenants[0].Tenant != "") {
		fmt.Println("per tenant:")
		for _, t := range rep.Tenants {
			name := t.Tenant
			if name == "" {
				name = "(none)"
			}
			fmt.Printf("  %-10s keys %-4d n %-6d live %-12.6g opt %-12.6g ratio %.4f\n",
				name, t.Keys, t.N, t.LiveCost, t.HindsightOpt, t.Ratio)
		}
	}
	if rep.ShadowPanel != nil {
		fmt.Println("counterfactual panel (cost over hindsight optimum):")
		for _, st := range rep.ShadowPanel.Standings {
			marker := " "
			if st.Best {
				marker = "*"
			}
			tag := ""
			if st.Live {
				tag = " (live)"
			}
			fmt.Printf("  %s %-18s cost %-12.6g x%-8.4f hits %-6d transfers %-6d drops %d%s\n",
				marker, st.Policy, st.Cost, st.CostOverOptimum, st.Hits, st.Transfers, st.Drops, tag)
		}
	}
}

// exportTraces reconstructs each key's workload from the recording and
// writes it through the canonical sequence serializer — the same
// helper dcgen writes with and dcsim/dcopt read with — so recorded
// production traffic feeds straight back into the off-line tooling.
func exportTraces(in, dir, format string) (int, error) {
	if !trace.ValidFormat(format) {
		return 0, fmt.Errorf("unknown trace format %q (want one of %s)", format, strings.Join(trace.Formats(), ", "))
	}
	recs, err := recorder.ReadPath(in)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	ext := format
	if ext == "" {
		ext = trace.FormatCSV
	}
	n := 0
	for _, tr := range datacache.RecordedTraces(recs) {
		if len(tr.Seq.Requests) == 0 {
			continue
		}
		name := tr.Session
		if tr.Tenant != "" {
			name += "_" + tr.Tenant
		}
		if tr.Item != "" {
			name += "_" + tr.Item
		}
		f, err := os.Create(filepath.Join(dir, sanitizeName(name)+"."+strings.ToLower(ext)))
		if err != nil {
			return n, err
		}
		if err := trace.WriteSequence(f, format, tr.Seq); err != nil {
			f.Close()
			return n, err
		}
		if err := f.Close(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// sanitizeName maps a session/tenant/item key to a safe file stem.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcreplay:", err)
	os.Exit(1)
}
