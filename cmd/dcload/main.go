// Command dcload is a closed-loop load generator for dcserved, built on
// the typed client package. It opens one serving session per worker,
// drives a deterministic workload through the bulk-ingestion endpoint
// (POST /v1/session/{id}/requests) and reports a latency histogram, the
// achieved throughput, and every session's final competitive ratio.
//
// Usage:
//
//	dcload -addr http://localhost:8080 -n 10000 -c 4 -batch 64
//	dcload -workload zipf -m 16 -seed 7 -qps 2000 -out report.txt
//	dcload -workload adversarial -batch 1          # single-request path
//	dcload -items 256 -item-dist zipf -c 4         # multi-item pool mode
//	dcload -shadow                                 # counterfactual policy comparison
//
// With -shadow (or an explicit -shadows list) every session additionally
// runs a panel of counterfactual shadow policies in lockstep with the
// live one — by default a tighter TTL, an epoch-restarted SC, and the
// migrate/replicate baselines — and the report ends with a
// policy-comparison table: exact cumulative cost, cost over optimum,
// hits, transfers, drops and decision divergence per policy, the
// cheapest row starred. In pool mode the comparison aggregates over the
// whole pool.
//
// With -items N > 0 dcload switches to pool mode: all workers share ONE
// multi-item pool (POST /v1/pool), each worker serving as its own tenant
// ("w0", "w1", ...) so per-key request times stay strictly increasing
// under concurrency. Every request is assigned an item key from the
// -item-dist distribution (zipf, the skew production caches see, or
// uniform), -max-items forwards the pool's engine-state bound, and the
// report adds per-tenant competitive ratios — -max-ratio then gates on
// the worst tenant.
//
// Every round-trip runs under its own root trace (the client mints a W3C
// traceparent per batch), so the report can name the guilty requests: it
// ends with the ten slowest and the ten highest-regret trace ids, ready
// to paste into GET /v1/traces/{id} on the server.
//
// With -record <dir> (against a server started with -record-dir) every
// session's — or the pool's — flight recording is downloaded into <dir>
// before closing, ready for "dcreplay -in <dir>" to verify bit-for-bit
// and score against the hindsight optimum. -report-json <path> writes
// the report as machine-readable JSON alongside the text form, including
// an "alerts" block with every alert transition (SLO rules and metric
// anomalies) the server annotated during the run window.
//
// With -history-report the report also queries the server's embedded
// metrics history (GET /v1/metrics/history) after the run and appends
// the windowed-ratio, decision-p99 and shed-rate trajectories as
// sparklines — the history store retains closed sessions' series for one
// retention window, so this works without -keep-sessions.
//
// Exit status is non-zero when any request fails with a 5xx (or a
// transport error), when -record was set and a download failed, or when
// -max-ratio is set and any session finishes above it — which is what
// the CI smoke job asserts. Tracing never affects the exit status.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"datacache/client"
	"datacache/internal/model"
	"datacache/internal/service"
	"datacache/internal/stats"
	"datacache/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "dcserved base URL")
		n        = flag.Int("n", 10000, "total requests across all workers")
		c        = flag.Int("c", 4, "concurrent workers, one session each")
		batch    = flag.Int("batch", 64, "requests per batch (1 uses the single-request endpoint)")
		wl       = flag.String("workload", "zipf", "workload: uniform|zipf|adversarial|cycle (cycle is the predictable trajectory for -policy hybrid)")
		m        = flag.Int("m", 16, "number of servers")
		mu       = flag.Float64("mu", 1, "transfer cost μ")
		lambda   = flag.Float64("lambda", 2, "holding cost λ per unit time")
		policy   = flag.String("policy", "sc", "live policy spec: sc | ttl:window=X | migrate | replicate | hybrid:horizon=K,order=k")
		gap      = flag.Float64("gap", 1.0, "mean inter-arrival time of the generated trace")
		seed     = flag.Int64("seed", 1, "workload seed (worker i uses seed+i)")
		qps      = flag.Float64("qps", 0, "target aggregate requests/sec (0 = closed loop)")
		ndjson   = flag.Bool("ndjson", false, "send batches as NDJSON instead of JSON")
		items    = flag.Int("items", 0, "pool mode: spread requests over this many items through one shared /v1/pool (0 = per-worker sessions)")
		itemDist = flag.String("item-dist", "zipf", "pool mode item-key distribution: zipf|uniform")
		maxItems = flag.Int("max-items", 0, "pool mode: bound live engine state to this many items (0 = unbounded)")
		shadow   = flag.Bool("shadow", false, "run counterfactual shadow policies alongside the live one and report a policy-comparison table")
		shadows  = flag.String("shadows", "", "comma-separated shadow specs (implies -shadow); empty picks a default panel from -mu/-lambda")
		maxRatio = flag.Float64("max-ratio", 0, "fail if any session's final ratio exceeds this (0 disables)")
		keep     = flag.Bool("keep-sessions", false, "leave sessions open after the run (closing one retires its retained traces, so use this when the reported trace ids should stay queryable)")
		histRep  = flag.Bool("history-report", false, "append server-side history trajectories (windowed ratio, decision p99, shed rate) to the report; works even after sessions close, while their history is retained")
		record   = flag.String("record", "", "download every session's flight recording into this directory before closing (requires dcserved -record-dir; replay with dcreplay -in <dir>)")
		out      = flag.String("out", "", "also write the report to this file")
		repJSON  = flag.String("report-json", "", "also write the report as machine-readable JSON to this file")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-call HTTP timeout")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dcload " + service.Version)
		return
	}
	if *n <= 0 || *c <= 0 || *batch <= 0 {
		fmt.Fprintln(os.Stderr, "dcload: -n, -c and -batch must be positive")
		os.Exit(2)
	}
	if *c > *n {
		*c = *n
	}

	gen, err := makeGenerator(*wl, *m, *gap, *mu, *lambda)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcload: %v\n", err)
		os.Exit(2)
	}

	var shadowSpecs []string
	if *shadow || *shadows != "" {
		shadowSpecs = shadowPanel(*shadows, *mu, *lambda)
	}

	cl := client.New(*addr,
		client.WithHTTPClient(&http.Client{Timeout: *timeout}),
		client.WithTraceSeed(*seed))
	ctx := context.Background()
	if _, _, err := cl.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dcload: server not reachable at %s: %v\n", *addr, err)
		os.Exit(1)
	}

	if *record != "" {
		if err := os.MkdirAll(*record, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dcload: -record dir: %v\n", err)
			os.Exit(2)
		}
	}

	if *items > 0 {
		os.Exit(runPoolMode(ctx, cl, gen, poolModeConfig{
			n: *n, c: *c, batch: *batch, items: *items, itemDist: *itemDist,
			maxItems: *maxItems, m: *m, mu: *mu, lambda: *lambda, policy: *policy,
			seed: *seed, qps: *qps, ndjson: *ndjson, keep: *keep,
			maxRatio: *maxRatio, out: *out, repJSON: *repJSON,
			record: *record, shadows: shadowSpecs, histReport: *histRep,
		}))
	}

	// Split n across workers; the first n%c workers take one extra.
	results := make([]workerResult, *c)
	done := make(chan int, *c)
	perWorkerQPS := *qps / float64(*c)
	start := time.Now()
	for w := 0; w < *c; w++ {
		share := *n / *c
		if w < *n%*c {
			share++
		}
		cfg := workerConfig{
			id:      w,
			n:       share,
			batch:   *batch,
			seq:     gen.Generate(rand.New(rand.NewSource(*seed+int64(w))), share),
			policy:  *policy,
			mu:      *mu,
			lambda:  *lambda,
			qps:     perWorkerQPS,
			ndjson:  *ndjson,
			keep:    *keep,
			record:  *record,
			shadows: shadowSpecs,
		}
		go func(w int, cfg workerConfig) {
			results[w] = runWorker(ctx, cl, cfg)
			done <- w
		}(w, cfg)
	}
	for i := 0; i < *c; i++ {
		<-done
	}
	elapsed := time.Since(start)

	rep := buildReport(gen.Name(), *batch, elapsed, results)
	if *histRep || *repJSON != "" {
		var ids []string
		for _, r := range results {
			if r.SessionID != "" {
				ids = append(ids, r.SessionID)
			}
		}
		rep.attachHistory(ctx, cl, ids, "", elapsed+30*time.Second, *histRep)
	}
	text := rep.String()
	fmt.Print(text)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dcload: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *repJSON != "" {
		if err := rep.writeJSON(*repJSON); err != nil {
			fmt.Fprintf(os.Stderr, "dcload: writing %s: %v\n", *repJSON, err)
			os.Exit(1)
		}
	}

	if rep.Errs5xx > 0 || rep.Transport > 0 {
		fmt.Fprintf(os.Stderr, "dcload: FAIL: %d server errors, %d transport errors\n", rep.Errs5xx, rep.Transport)
		os.Exit(1)
	}
	if *record != "" && len(rep.RecordFiles) < len(results) {
		fmt.Fprintf(os.Stderr, "dcload: FAIL: -record downloaded %d of %d session recordings\n", len(rep.RecordFiles), len(results))
		os.Exit(1)
	}
	if *maxRatio > 0 && rep.MaxSessionRatio > *maxRatio {
		fmt.Fprintf(os.Stderr, "dcload: FAIL: worst session ratio %.4f exceeds -max-ratio %.4f\n", rep.MaxSessionRatio, *maxRatio)
		os.Exit(1)
	}
}

func makeGenerator(name string, m int, gap, mu, lambda float64) (workload.Generator, error) {
	switch name {
	case "uniform":
		return workload.Uniform{M: m, MeanGap: gap}, nil
	case "zipf":
		return workload.Zipf{M: m, S: 1.2, MeanGap: gap}, nil
	case "adversarial":
		// The anti-SC pattern: gaps just past the speculative window Δt=λ/μ.
		return workload.Adversarial{M: m, Window: lambda / mu}, nil
	case "cycle":
		// The fully predictable trajectory — the hybrid planner's best
		// case: pair with -policy hybrid:horizon=8,order=2 and watch
		// dc_planner_predicted_hit_ratio approach 1.
		return workload.Cycle{M: m, Gap: gap}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (uniform|zipf|adversarial|cycle)", name)
	}
}

type workerConfig struct {
	id      int
	n       int
	batch   int
	seq     *model.Sequence
	policy  string
	mu      float64
	lambda  float64
	qps     float64 // this worker's pacing target; 0 = closed loop
	ndjson  bool
	keep    bool     // leave the session open after the run
	record  string   // download the flight recording into this dir (empty disables)
	shadows []string // counterfactual policy specs (empty disables)
}

// shadowPanel resolves the shadow specs to run: the -shadows list when
// given, else a default panel spanning the policy space around the live
// SC window Δt = λ/μ — a tighter TTL, an epoch-restarted SC, and the
// two baselines of the paper.
func shadowPanel(specs string, mu, lambda float64) []string {
	if specs != "" {
		var out []string
		for _, s := range strings.Split(specs, ",") {
			if s = strings.TrimSpace(s); s != "" {
				out = append(out, s)
			}
		}
		return out
	}
	return []string{
		fmt.Sprintf("ttl:window=%g", lambda/mu/2),
		"sc:epoch=16",
		"migrate",
		"replicate",
	}
}

// traceSample ties one round-trip's root trace id to its latency and the
// regret the batch added (online cost delta − optimum delta).
type traceSample struct {
	TraceID string  `json:"traceId"`
	Latency float64 `json:"latencySec"` // seconds
	Regret  float64 `json:"regret"`
}

type workerResult struct {
	Served     int
	SessionID  string        // the worker's session (empty in pool mode)
	Latencies  []float64     // seconds per round-trip (batch or single)
	Traces     []traceSample // one per applied round-trip
	Sheds      int           // 429 retries
	Errs4xx    int           // non-429 client errors
	Errs5xx    int
	Transport  int
	FinalRatio float64
	Shadow     []client.ShadowStanding // final counterfactual standings
	RecordFile string                  // downloaded flight recording, if any
	Err        error                   // first fatal error (session create, etc.)
	prevGap    float64                 // Cost − Optimal before the current chunk
}

// runWorker drives one session to completion. Batches retry on 429 using
// the server's Retry-After hint; every other error drops the batch and is
// counted by class.
func runWorker(ctx context.Context, cl *client.Client, cfg workerConfig) workerResult {
	var res workerResult
	sess, err := cl.CreateSession(ctx, client.SessionConfig{
		M:       cfg.seq.M,
		Origin:  cfg.seq.Origin,
		Mu:      cfg.mu,
		Lambda:  cfg.lambda,
		Policy:  cfg.policy,
		Shadows: cfg.shadows,
	})
	if err != nil {
		res.Err = fmt.Errorf("worker %d: create session: %w", cfg.id, err)
		res.Transport++
		return res
	}
	res.SessionID = sess.ID
	if !cfg.keep {
		defer sess.Close(ctx)
	}

	var interval time.Duration
	if cfg.qps > 0 {
		interval = time.Duration(float64(cfg.batch) / cfg.qps * float64(time.Second))
	}
	next := time.Now()

	reqs := cfg.seq.Requests
	for off := 0; off < len(reqs); off += cfg.batch {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		end := off + cfg.batch
		if end > len(reqs) {
			end = len(reqs)
		}
		chunk := make([]client.Request, 0, end-off)
		for _, r := range reqs[off:end] {
			chunk = append(chunk, client.Request{Server: r.Server, T: r.Time})
		}
		ratio, ok := res.serveChunk(ctx, cl, sess, chunk, cfg)
		if ok {
			res.FinalRatio = ratio
		}
	}
	if len(cfg.shadows) > 0 {
		if sr, err := sess.Shadow(ctx); err == nil {
			res.Shadow = sr.Standings
		}
	}
	// Download the flight recording before the deferred Close: closing
	// the session deletes its registry entry and the endpoint with it.
	if cfg.record != "" {
		file, err := downloadRecord(ctx, cfg.record, sess.ID, sess.Record)
		if err != nil {
			res.countError(fmt.Errorf("worker %d: record download: %w", cfg.id, err))
		} else {
			res.RecordFile = file
		}
	}
	return res
}

// downloadRecord fetches one id's flight recording in binary mode and
// writes it to dir/<id>.wal — the layout dcreplay -in <dir> expects.
func downloadRecord(ctx context.Context, dir, id string, fetch func(context.Context, string) ([]byte, error)) (string, error) {
	raw, err := fetch(ctx, "binary")
	if err != nil {
		return "", err
	}
	file := filepath.Join(dir, id+".wal")
	if err := os.WriteFile(file, raw, 0o644); err != nil {
		return "", err
	}
	return file, nil
}

// serveChunk submits one chunk under its own root trace, retrying
// overload sheds (each attempt is a fresh trace), and returns the
// post-batch ratio when the chunk applied.
func (res *workerResult) serveChunk(ctx context.Context, cl *client.Client, sess *client.Session, chunk []client.Request, cfg workerConfig) (float64, bool) {
	for attempt := 0; ; attempt++ {
		tp := cl.NewTraceparent()
		traceID, _ := client.TraceIDOf(tp)
		tctx := client.WithTraceparent(ctx, tp)
		t0 := time.Now()
		var ratio, cost, opt float64
		var served int
		var err error
		if cfg.batch == 1 {
			var d client.Decision
			d, err = sess.Serve(tctx, chunk[0].Server, chunk[0].T)
			ratio, served, cost, opt = d.Ratio, 1, d.Cost, d.Optimal
		} else if cfg.ndjson {
			var b client.BatchResponse
			b, err = sess.ServeBatchNDJSON(tctx, chunk)
			ratio, served, cost, opt = b.Ratio, b.Applied, b.Cost, b.Optimal
		} else {
			var b client.BatchResponse
			b, err = sess.ServeBatch(tctx, chunk)
			ratio, served, cost, opt = b.Ratio, b.Applied, b.Cost, b.Optimal
		}
		if err == nil {
			lat := time.Since(t0).Seconds()
			res.Latencies = append(res.Latencies, lat)
			res.Served += served
			gap := cost - opt
			res.Traces = append(res.Traces, traceSample{
				TraceID: traceID,
				Latency: lat,
				Regret:  gap - res.prevGap,
			})
			res.prevGap = gap
			return ratio, true
		}
		if client.IsOverloaded(err) && attempt < 50 {
			res.Sheds++
			backoff := client.RetryAfterOf(err)
			if backoff <= 0 {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
			continue
		}
		res.countError(err)
		return 0, false
	}
}

// --- pool mode ---

type poolModeConfig struct {
	n, c, batch     int
	items, maxItems int
	itemDist        string
	m               int
	mu, lambda      float64
	policy          string
	seed            int64
	qps             float64
	ndjson          bool
	keep            bool
	maxRatio        float64
	out             string
	repJSON         string
	record          string
	shadows         []string
	histReport      bool
}

// runPoolMode drives one shared multi-item pool from c tenant-workers and
// returns the process exit code. Per-tenant final ratios come from the
// pool's tenant rollups, and -max-ratio gates on the worst tenant.
func runPoolMode(ctx context.Context, cl *client.Client, gen workload.Generator, cfg poolModeConfig) int {
	pickItem, err := makeItemPicker(cfg.itemDist, cfg.items)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcload: %v\n", err)
		return 2
	}
	pool, err := cl.CreatePool(ctx, client.PoolConfig{
		M: cfg.m, Origin: 1, Mu: cfg.mu, Lambda: cfg.lambda,
		Policy: cfg.policy, MaxItems: cfg.maxItems, Shadows: cfg.shadows,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcload: create pool: %v\n", err)
		return 1
	}

	results := make([]workerResult, cfg.c)
	done := make(chan int, cfg.c)
	perWorkerQPS := cfg.qps / float64(cfg.c)
	start := time.Now()
	for w := 0; w < cfg.c; w++ {
		share := cfg.n / cfg.c
		if w < cfg.n%cfg.c {
			share++
		}
		// Each worker is its own tenant: per-(tenant, item) times are then
		// strictly increasing no matter how workers interleave on the wire.
		rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
		seq := gen.Generate(rand.New(rand.NewSource(cfg.seed+int64(w))), share)
		reqs := make([]client.PoolRequest, 0, len(seq.Requests))
		for _, r := range seq.Requests {
			reqs = append(reqs, client.PoolRequest{
				Tenant: fmt.Sprintf("w%d", w),
				Item:   fmt.Sprintf("item-%d", pickItem(rng)),
				Server: r.Server,
				T:      r.Time,
			})
		}
		go func(w int, reqs []client.PoolRequest) {
			results[w] = runPoolWorker(ctx, cl, pool, reqs, cfg, perWorkerQPS)
			done <- w
		}(w, reqs)
	}
	for i := 0; i < cfg.c; i++ {
		<-done
	}
	elapsed := time.Since(start)

	state, stateErr := pool.State(ctx)
	var shadowRows []client.ShadowStanding
	if len(cfg.shadows) > 0 {
		if sr, err := pool.Shadow(ctx); err == nil {
			shadowRows = sr.Standings
		}
	}
	var recordFiles []string
	if cfg.record != "" {
		file, err := downloadRecord(ctx, cfg.record, pool.ID, pool.Record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcload: record download: %v\n", err)
			if stateErr == nil {
				stateErr = err
			}
		} else {
			recordFiles = append(recordFiles, file)
		}
	}
	if !cfg.keep {
		if _, err := pool.Close(ctx); err != nil && stateErr == nil {
			stateErr = err
		}
	}

	rep := buildReport(gen.Name()+"/pool", cfg.batch, elapsed, results)
	if cfg.histReport || cfg.repJSON != "" {
		rep.attachHistory(ctx, cl, nil, pool.ID, elapsed+30*time.Second, cfg.histReport)
	}
	rep.Pool = &state
	rep.Shadow = shadowRows
	rep.RecordFiles = recordFiles
	rep.MaxSessionRatio = 0
	rep.Ratios = rep.Ratios[:0]
	for _, ts := range state.Tenants {
		rep.Ratios = append(rep.Ratios, ts.Ratio)
		if ts.Ratio > rep.MaxSessionRatio {
			rep.MaxSessionRatio = ts.Ratio
		}
	}
	if stateErr != nil && rep.FirstErr == nil {
		rep.FirstErr = stateErr
	}
	text := rep.String()
	fmt.Print(text)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dcload: writing %s: %v\n", cfg.out, err)
			return 1
		}
	}
	if cfg.repJSON != "" {
		if err := rep.writeJSON(cfg.repJSON); err != nil {
			fmt.Fprintf(os.Stderr, "dcload: writing %s: %v\n", cfg.repJSON, err)
			return 1
		}
	}
	if rep.Errs5xx > 0 || rep.Transport > 0 {
		fmt.Fprintf(os.Stderr, "dcload: FAIL: %d server errors, %d transport errors\n", rep.Errs5xx, rep.Transport)
		return 1
	}
	if cfg.record != "" && len(rep.RecordFiles) == 0 {
		fmt.Fprintln(os.Stderr, "dcload: FAIL: -record was set but no recording was downloaded")
		return 1
	}
	if cfg.maxRatio > 0 && rep.MaxSessionRatio > cfg.maxRatio {
		fmt.Fprintf(os.Stderr, "dcload: FAIL: worst tenant ratio %.4f exceeds -max-ratio %.4f\n", rep.MaxSessionRatio, cfg.maxRatio)
		return 1
	}
	return 0
}

// makeItemPicker returns a draw from the item-key distribution.
func makeItemPicker(dist string, items int) (func(*rand.Rand) int, error) {
	switch dist {
	case "uniform":
		return func(r *rand.Rand) int { return r.Intn(items) }, nil
	case "zipf":
		// s=1.2 matches the request-workload Zipf skew; item 0 is hottest.
		return func(r *rand.Rand) int {
			z := rand.NewZipf(r, 1.2, 1, uint64(items-1))
			return int(z.Uint64())
		}, nil
	default:
		return nil, fmt.Errorf("unknown item distribution %q (zipf|uniform)", dist)
	}
}

// runPoolWorker drives one tenant's request stream against the shared
// pool, chunked like the session path, retrying overload sheds.
func runPoolWorker(ctx context.Context, cl *client.Client, pool *client.Pool, reqs []client.PoolRequest, cfg poolModeConfig, qps float64) workerResult {
	var res workerResult
	var interval time.Duration
	if qps > 0 {
		interval = time.Duration(float64(cfg.batch) / qps * float64(time.Second))
	}
	next := time.Now()
	for off := 0; off < len(reqs); off += cfg.batch {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		end := off + cfg.batch
		if end > len(reqs) {
			end = len(reqs)
		}
		res.servePoolChunk(ctx, cl, pool, reqs[off:end], cfg)
	}
	return res
}

// servePoolChunk submits one multi-item chunk under its own root trace.
// Per-chunk regret is the sum of the applied decisions' per-request
// regret — exact even though other tenants advance the pool concurrently.
func (res *workerResult) servePoolChunk(ctx context.Context, cl *client.Client, pool *client.Pool, chunk []client.PoolRequest, cfg poolModeConfig) {
	for attempt := 0; ; attempt++ {
		tp := cl.NewTraceparent()
		traceID, _ := client.TraceIDOf(tp)
		tctx := client.WithTraceparent(ctx, tp)
		t0 := time.Now()
		var served int
		var regret float64
		var err error
		if cfg.batch == 1 {
			var d client.PoolDecision
			d, err = pool.Serve(tctx, chunk[0].Tenant, chunk[0].Item, chunk[0].Server, chunk[0].T)
			served, regret = 1, d.Regret
		} else {
			var b client.PoolBatchResponse
			if cfg.ndjson {
				b, err = pool.ServeBatchNDJSON(tctx, chunk)
			} else {
				b, err = pool.ServeBatch(tctx, chunk)
			}
			served = b.Applied
			for _, d := range b.Decisions {
				regret += d.Regret
			}
		}
		if err == nil {
			lat := time.Since(t0).Seconds()
			res.Latencies = append(res.Latencies, lat)
			res.Served += served
			res.Traces = append(res.Traces, traceSample{TraceID: traceID, Latency: lat, Regret: regret})
			return
		}
		if client.IsOverloaded(err) && attempt < 50 {
			res.Sheds++
			backoff := client.RetryAfterOf(err)
			if backoff <= 0 {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
			continue
		}
		res.countError(err)
		return
	}
}

func (res *workerResult) countError(err error) {
	var ae *client.APIError
	switch {
	case errors.As(err, &ae) && ae.Status >= 500:
		res.Errs5xx++
	case ae != nil:
		res.Errs4xx++
	default:
		res.Transport++
	}
	if res.Err == nil {
		res.Err = err
	}
}

// report aggregates every worker's outcome into the printed summary.
type report struct {
	Workload        string
	Batch           int
	Elapsed         time.Duration
	Served          int
	Sheds           int
	Errs4xx         int
	Errs5xx         int
	Transport       int
	Lat             stats.Summary
	LatP999, LatMax float64
	MaxSessionRatio float64
	Ratios          []float64
	Pool            *client.PoolState          // pool mode: final pool standings
	Shadow          []client.ShadowStanding    // counterfactual policy comparison
	Slowest         []traceSample              // top 10 by round-trip latency
	TopRegret       []traceSample              // top 10 by regret added
	RecordFiles     []string                   // downloaded flight recordings
	History         []client.HistorySeries     // -history-report: server-side trajectories over the run window
	Alerts          []client.HistoryAnnotation // every alert transition in the run window
	FirstErr        error
}

// attachHistory queries the server's embedded metrics history over the
// run window: the alert-transition timeline always lands in the report
// (the JSON form's "alerts" block, which CI asserts is quiet on steady
// workloads), and with -history-report the key series' trajectories are
// kept too. The store retains closed sessions' series for one retention
// window, so this works after the deferred closes. Errors degrade to an
// empty section — a pre-history server still yields a full report.
func (rep *report) attachHistory(ctx context.Context, cl *client.Client, sessions []string, pool string, window time.Duration, withSeries bool) {
	sel := []string{"dc_engine_decision_seconds_p99"}
	for _, id := range sessions {
		sel = append(sel,
			client.SessionSeries("dc_session_windowed_ratio", id),
			client.SessionSeries("dc_session_batches_shed_total", id))
	}
	if pool != "" {
		sel = append(sel, client.PoolSeries("dc_pool_cost_over_optimum", pool))
	}
	hist, err := cl.History(ctx, client.HistoryQuery{
		Series: sel, Window: window, Agg: "avg", Limit: len(sel),
	})
	if err != nil {
		return
	}
	rep.Alerts = hist.Annotations
	if withSeries {
		rep.History = hist.Series
	}
}

// jsonReport is the machine-readable shape of -report-json: the same
// facts the text report prints, stable field names, seconds throughout.
type jsonReport struct {
	Workload   string                  `json:"workload"`
	Batch      int                     `json:"batch"`
	ElapsedSec float64                 `json:"elapsedSec"`
	Served     int                     `json:"served"`
	ReqPerSec  float64                 `json:"reqPerSec"`
	RoundTrips int                     `json:"roundTrips"`
	Sheds      int                     `json:"sheds"`
	Errs4xx    int                     `json:"errs4xx"`
	Errs5xx    int                     `json:"errs5xx"`
	Transport  int                     `json:"transport"`
	Latency    *jsonLatency            `json:"latency,omitempty"`
	WorstRatio float64                 `json:"worstRatio"`
	Ratios     []float64               `json:"ratios,omitempty"`
	Pool       *client.PoolState       `json:"pool,omitempty"`
	Shadow     []client.ShadowStanding `json:"shadow,omitempty"`
	Slowest    []traceSample           `json:"slowestTraces,omitempty"`
	TopRegret  []traceSample           `json:"topRegretTraces,omitempty"`
	Records    []string                `json:"recordings,omitempty"`
	History    []client.HistorySeries  `json:"history,omitempty"`
	// Alerts lists every alert transition (SLO rules and metric
	// anomalies) the server annotated during the run window. Always
	// present — an empty array means a quiet run, which is exactly what
	// CI asserts for steady workloads.
	Alerts     []client.HistoryAnnotation `json:"alerts"`
	FirstError string                     `json:"firstError,omitempty"`
}

type jsonLatency struct {
	MeanSec float64 `json:"meanSec"`
	P50Sec  float64 `json:"p50Sec"`
	P90Sec  float64 `json:"p90Sec"`
	P99Sec  float64 `json:"p99Sec"`
	P999Sec float64 `json:"p999Sec"`
	MaxSec  float64 `json:"maxSec"`
}

// writeJSON writes the -report-json artifact.
func (rep *report) writeJSON(path string) error {
	jr := jsonReport{
		Workload:   rep.Workload,
		Batch:      rep.Batch,
		ElapsedSec: rep.Elapsed.Seconds(),
		Served:     rep.Served,
		RoundTrips: rep.Lat.N,
		Sheds:      rep.Sheds,
		Errs4xx:    rep.Errs4xx,
		Errs5xx:    rep.Errs5xx,
		Transport:  rep.Transport,
		WorstRatio: rep.MaxSessionRatio,
		Ratios:     rep.Ratios,
		Pool:       rep.Pool,
		Shadow:     rep.Shadow,
		Slowest:    rep.Slowest,
		TopRegret:  rep.TopRegret,
		Records:    rep.RecordFiles,
		History:    rep.History,
		Alerts:     rep.Alerts,
	}
	if jr.Alerts == nil {
		jr.Alerts = []client.HistoryAnnotation{}
	}
	if rep.Elapsed > 0 {
		jr.ReqPerSec = float64(rep.Served) / rep.Elapsed.Seconds()
	}
	if rep.Lat.N > 0 {
		jr.Latency = &jsonLatency{
			MeanSec: rep.Lat.Mean, P50Sec: rep.Lat.P50, P90Sec: rep.Lat.P90,
			P99Sec: rep.Lat.P99, P999Sec: rep.LatP999, MaxSec: rep.LatMax,
		}
	}
	if rep.FirstErr != nil {
		jr.FirstError = rep.FirstErr.Error()
	}
	buf, err := json.MarshalIndent(jr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func buildReport(workloadName string, batch int, elapsed time.Duration, results []workerResult) *report {
	rep := &report{Workload: workloadName, Batch: batch, Elapsed: elapsed}
	var all []float64
	for _, r := range results {
		rep.Served += r.Served
		rep.Sheds += r.Sheds
		rep.Errs4xx += r.Errs4xx
		rep.Errs5xx += r.Errs5xx
		rep.Transport += r.Transport
		all = append(all, r.Latencies...)
		if r.Served > 0 {
			rep.Ratios = append(rep.Ratios, r.FinalRatio)
			if r.FinalRatio > rep.MaxSessionRatio {
				rep.MaxSessionRatio = r.FinalRatio
			}
		}
		if rep.FirstErr == nil && r.Err != nil {
			rep.FirstErr = r.Err
		}
		if r.RecordFile != "" {
			rep.RecordFiles = append(rep.RecordFiles, r.RecordFile)
		}
	}
	rep.Shadow = mergeShadowStandings(results)
	rep.Lat = stats.Summarize(all)
	if len(all) > 0 {
		sort.Float64s(all)
		rep.LatP999 = stats.Percentile(all, 0.999)
		rep.LatMax = all[len(all)-1]
	}
	var traces []traceSample
	for _, r := range results {
		traces = append(traces, r.Traces...)
	}
	rep.Slowest = topTraces(traces, func(a, b traceSample) bool { return a.Latency > b.Latency })
	rep.TopRegret = topTraces(traces, func(a, b traceSample) bool { return a.Regret > b.Regret })
	return rep
}

// mergeShadowStandings sums each worker-session's counterfactual
// standings by policy label — costs, hits, transfers, drops and
// divergence counts are all additive across sessions — preserving the
// row order of the first worker that reported any.
func mergeShadowStandings(results []workerResult) []client.ShadowStanding {
	var order []string
	byPolicy := map[string]*client.ShadowStanding{}
	for _, r := range results {
		for _, row := range r.Shadow {
			agg, ok := byPolicy[row.Policy]
			if !ok {
				cp := row
				cp.Best = false
				byPolicy[row.Policy] = &cp
				order = append(order, row.Policy)
				continue
			}
			agg.Cost += row.Cost
			agg.WindowedCost += row.WindowedCost
			agg.Hits += row.Hits
			agg.Transfers += row.Transfers
			agg.Drops += row.Drops
			agg.Divergence += row.Divergence
		}
	}
	if len(order) == 0 {
		return nil
	}
	out := make([]client.ShadowStanding, 0, len(order))
	best, bestCost := -1, 0.0
	for i, p := range order {
		row := *byPolicy[p]
		if row.Err == "" && (best < 0 || row.Cost < bestCost) {
			best, bestCost = i, row.Cost
		}
		out = append(out, row)
	}
	if best >= 0 {
		out[best].Best = true
	}
	return out
}

// topTraces returns the ten best samples under less (a "greater than"
// comparator yields the top ten descending).
func topTraces(ts []traceSample, less func(a, b traceSample) bool) []traceSample {
	sorted := make([]traceSample, len(ts))
	copy(sorted, ts)
	sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	if len(sorted) > 10 {
		sorted = sorted[:10]
	}
	return sorted
}

func (rep *report) String() string {
	var b strings.Builder
	ms := func(s float64) string { return fmt.Sprintf("%.3f ms", s*1e3) }
	fmt.Fprintf(&b, "dcload report\n")
	fmt.Fprintf(&b, "  workload      %s  batch=%d\n", rep.Workload, rep.Batch)
	fmt.Fprintf(&b, "  served        %d requests in %v (%.0f req/s)\n",
		rep.Served, rep.Elapsed.Round(time.Millisecond), float64(rep.Served)/rep.Elapsed.Seconds())
	fmt.Fprintf(&b, "  round-trips   %d  (sheds retried: %d)\n", rep.Lat.N, rep.Sheds)
	if rep.Lat.N > 0 {
		fmt.Fprintf(&b, "  latency       mean %s  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
			ms(rep.Lat.Mean), ms(rep.Lat.P50), ms(rep.Lat.P90), ms(rep.Lat.P99), ms(rep.LatP999), ms(rep.LatMax))
	}
	fmt.Fprintf(&b, "  errors        4xx=%d 5xx=%d transport=%d\n", rep.Errs4xx, rep.Errs5xx, rep.Transport)
	if rep.Pool != nil {
		fmt.Fprintf(&b, "  pool          items=%d live=%d evictions=%d revivals=%d ratio=%.4f\n",
			rep.Pool.Items, rep.Pool.LiveItems, rep.Pool.Evictions, rep.Pool.Revivals, rep.Pool.Ratio)
		fmt.Fprintf(&b, "  tenant ratios worst %.4f\n", rep.MaxSessionRatio)
		for _, ts := range rep.Pool.Tenants {
			name := ts.Tenant
			if name == "" {
				name = "(default)"
			}
			fmt.Fprintf(&b, "    %-10s n=%-7d items=%-5d ratio %.4f  windowed %.4f\n",
				name, ts.N, ts.Items, ts.Ratio, ts.WindowedRatio)
		}
	} else if len(rep.Ratios) > 0 {
		fmt.Fprintf(&b, "  final ratios  worst %.4f  per-session %s\n", rep.MaxSessionRatio, fmtRatios(rep.Ratios))
	}
	if len(rep.Shadow) > 0 {
		fmt.Fprintf(&b, "  shadow policies (counterfactual, lockstep with live):\n")
		fmt.Fprintf(&b, "    %-20s %14s %8s %9s %8s %7s %9s\n",
			"policy", "cost", "/opt", "hits", "xfers", "drops", "diverged")
		for _, row := range rep.Shadow {
			mark := " "
			switch {
			case row.Err != "":
				mark = "!"
			case row.Best:
				mark = "*"
			}
			name := row.Policy
			if row.Live {
				name += " (live)"
			}
			fmt.Fprintf(&b, "  %s %-20s %14.4f %8.4f %9d %8d %7d %9d\n",
				mark, name, row.Cost, row.CostOverOptimum, row.Hits, row.Transfers, row.Drops, row.Divergence)
		}
	}
	if len(rep.Slowest) > 0 {
		fmt.Fprintf(&b, "  slowest traces (GET /v1/traces/{id}):\n")
		for _, ts := range rep.Slowest {
			fmt.Fprintf(&b, "    %s  %s  regret %+.4f\n", ts.TraceID, ms(ts.Latency), ts.Regret)
		}
	}
	if len(rep.TopRegret) > 0 {
		fmt.Fprintf(&b, "  highest-regret traces (GET /v1/traces/{id}):\n")
		for _, ts := range rep.TopRegret {
			fmt.Fprintf(&b, "    %s  regret %+.4f  %s\n", ts.TraceID, ts.Regret, ms(ts.Latency))
		}
	}
	if len(rep.History) > 0 {
		fmt.Fprintf(&b, "  history (server-side trajectories over the run window):\n")
		for _, sr := range rep.History {
			vals := make([]float64, len(sr.Points))
			for i, p := range sr.Points {
				vals[i] = p.V
			}
			fmt.Fprintf(&b, "    %-56s %s  last %.4g\n", sr.Key, stats.Sparkline(vals), vals[len(vals)-1])
		}
	}
	if len(rep.Alerts) > 0 {
		fmt.Fprintf(&b, "  alert transitions during the run:\n")
		for _, a := range rep.Alerts {
			line := fmt.Sprintf("    %-18s %s -> %s  value %.4g  scope %s", a.Rule, a.From, a.To, a.Value, a.Scope)
			if a.TraceID != "" {
				line += "  trace " + a.TraceID
			}
			b.WriteString(line + "\n")
		}
	}
	if len(rep.RecordFiles) > 0 {
		fmt.Fprintf(&b, "  recordings    %d file(s) in %s (replay: dcreplay -in %s)\n",
			len(rep.RecordFiles), filepath.Dir(rep.RecordFiles[0]), filepath.Dir(rep.RecordFiles[0]))
	}
	if rep.FirstErr != nil {
		fmt.Fprintf(&b, "  first error   %v\n", rep.FirstErr)
	}
	return b.String()
}

func fmtRatios(rs []float64) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%.3f", r)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
