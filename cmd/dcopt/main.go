// Command dcopt computes the optimal off-line schedule for a request trace
// under the homogeneous cost model, using the paper's O(mn) dynamic program
// (or the baselines, for cross-checking).
//
// Usage:
//
//	dcgen -workload markov -n 200 | dcopt -mu 1 -lambda 2 -schedule
//	dcopt -in trace.csv -algo naive -vectors
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"datacache/internal/model"
	"datacache/internal/offline"
	"datacache/internal/service"
	"datacache/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace file (default stdin)")
		format   = flag.String("format", "csv", "input format: csv|json")
		mu       = flag.Float64("mu", 1, "caching cost per unit time (μ)")
		lambda   = flag.Float64("lambda", 1, "transfer cost (λ)")
		algo     = flag.String("algo", "fast", "algorithm: fast|naive|subset")
		vectors  = flag.Bool("vectors", false, "print the C and D vectors")
		schedule = flag.Bool("schedule", false, "print the reconstructed optimal schedule")
		explain  = flag.Bool("explain", false, "print the per-request service decisions and cost attribution")
		diagram  = flag.Bool("diagram", false, "draw the schedule as a space-time diagram")
	)
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *version {
		fmt.Println("dcopt " + service.Version)
		return
	}

	seq, err := readTrace(*in, *format)
	if err != nil {
		fatal(err)
	}
	cm := model.CostModel{Mu: *mu, Lambda: *lambda}

	switch strings.ToLower(*algo) {
	case "subset":
		cost, err := offline.SubsetOptimal(seq, cm)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("optimal cost (subset oracle): %.6g\n", cost)
		return
	case "fast", "naive":
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	dp := offline.FastDP
	if *algo == "naive" {
		dp = offline.NaiveDP
	}
	res, err := dp(seq, cm)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("requests: %d   servers: %d   μ=%g λ=%g\n", seq.N(), seq.M, cm.Mu, cm.Lambda)
	fmt.Printf("optimal cost C(n): %.6g   lower bound B(n): %.6g\n", res.Cost(), res.B[seq.N()])
	if *vectors {
		for i := 1; i <= seq.N(); i++ {
			d := "+Inf"
			if !math.IsInf(res.D[i], 1) {
				d = fmt.Sprintf("%.6g", res.D[i])
			}
			fmt.Printf("  i=%-6d C=%-12.6g D=%s\n", i, res.C[i], d)
		}
	}
	if *schedule {
		sched, err := res.Schedule()
		if err != nil {
			fatal(err)
		}
		if err := sched.Validate(seq); err != nil {
			fatal(fmt.Errorf("internal error: reconstructed schedule infeasible: %w", err))
		}
		fmt.Printf("caching cost: %.6g (%d intervals)   transfer cost: %.6g (%d transfers)\n",
			sched.CachingCost(cm), len(sched.Caches), sched.TransferCost(cm), len(sched.Transfers))
		for _, h := range sched.Caches {
			fmt.Printf("  H(s%d, %.6g, %.6g)\n", h.Server, h.From, h.To)
		}
		for _, tr := range sched.Transfers {
			fmt.Printf("  Tr(s%d -> s%d, %.6g)\n", tr.From, tr.To, tr.Time)
		}
	}
	if *explain {
		ds, err := res.Explain()
		if err != nil {
			fatal(err)
		}
		fmt.Print(offline.RenderDecisions(ds))
	}
	if *diagram {
		sched, err := res.Schedule()
		if err != nil {
			fatal(err)
		}
		fmt.Print(model.RenderSpaceTime(seq, sched, 100))
		fmt.Print(model.RenderLegend())
	}
}

func readTrace(path, format string) (*model.Sequence, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadSequence(r, format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcopt:", err)
	os.Exit(1)
}
