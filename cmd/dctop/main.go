// Command dctop is a live terminal console for a running dcserved: it
// polls /metrics, /v1/alerts, /v1/metrics/history and one session's SLO
// and trace endpoints, and renders the windowed competitive ratio and
// decision-latency p99 as sparklines over real server-side history (so
// a fresh attach or a -once frame shows the past -history-window, not a
// series starting from scratch), the per-server copy/cost map, the
// alert list with recent transitions, and the most recent decision
// events, refreshing in place.
//
// Usage:
//
//	dctop -addr http://localhost:8080            # watch, auto-pick a session
//	dctop -addr http://localhost:8080 -session sn-3 -interval 500ms
//	dctop -addr http://localhost:8080 -once      # one plain frame, no ANSI
//
// Without -session, dctop picks the lexicographically first session that
// exports a dc_session_cost series. When any multi-item pool is live
// (a dc_pool_items series exists, or -pool names one), the frame adds a
// top-items panel: the pool's heaviest items by cumulative cost and by
// regret, next to the slow-traces panel. Sessions and pools running
// counterfactual shadow policies additionally get a policy-leaderboard
// panel ranking every policy by exact cumulative cost, live row marked,
// and hybrid-policy sessions a planner panel (gate state, plan depth,
// predictor confidence, predicted-hit ratio).
// All transport goes through the typed client package — dctop holds no
// HTTP plumbing of its own.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"datacache/client"
	"datacache/internal/service"
	"datacache/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "dcserved base URL")
		session  = flag.String("session", "", "session id to watch (default: first with a dc_session_cost series)")
		pool     = flag.String("pool", "", "pool id for the top-items panel (default: first with a dc_pool_items series)")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		histWin  = flag.Duration("history-window", 2*time.Minute, "server-side history window behind the sparklines")
		once     = flag.Bool("once", false, "render a single frame without ANSI control sequences and exit")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dctop " + service.Version)
		return
	}

	cl := client.New(*addr, client.WithHTTPClient(&http.Client{Timeout: 5 * time.Second}))
	ctx := context.Background()
	if *once {
		frame, err := renderFrame(ctx, cl, *session, *pool, *histWin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dctop: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(frame)
		return
	}
	for {
		frame, err := renderFrame(ctx, cl, *session, *pool, *histWin)
		// Home the cursor, redraw, and clear whatever an earlier (taller)
		// frame left below — steadier than a full-screen wipe per tick.
		fmt.Print("\x1b[H\x1b[2J")
		if err != nil {
			fmt.Printf("dctop: %v (retrying every %v)\n", err, *interval)
		} else {
			fmt.Print(frame)
		}
		time.Sleep(*interval)
	}
}

// renderFrame assembles one full console frame.
func renderFrame(ctx context.Context, cl *client.Client, session, pool string, histWin time.Duration) (string, error) {
	samples, err := cl.Metrics(ctx)
	if err != nil {
		return "", err
	}
	_, serverVersion, _ := cl.Health(ctx) // cosmetic only

	if session == "" {
		session = pickSession(samples)
	}
	if pool == "" {
		pool = pickPool(samples)
	}

	// One windowed-history round-trip feeds every sparkline in the frame,
	// so a freshly attached (or -once) dctop shows real server-side
	// history instead of starting a client-side series from scratch.
	hist := fetchHistory(ctx, cl, session, pool, histWin)

	var b strings.Builder
	fmt.Fprintf(&b, "dctop — datacache live console    server %s    %s\n",
		serverVersion, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "sessions open: %.0f    streams open: %.0f    pools open: %.0f\n",
		samples["dc_sessions_open"], samples["dc_streams_open"], samples["dc_pools_open"])
	writeRecorderLine(&b, samples)

	alerts, err := cl.Alerts(ctx)
	if err != nil {
		return "", err
	}

	if session == "" {
		b.WriteString("\nno live session to watch (create one via POST /v1/session)\n")
		writeAlerts(&b, alerts, hist.Annotations)
		writeTopItems(&b, ctx, cl, pool, hist)
		return b.String(), nil
	}

	sess := cl.OpenSession(session)
	slo, err := sess.SLO(ctx)
	if err != nil {
		return "", fmt.Errorf("session %s: %w", session, err)
	}

	fmt.Fprintf(&b, "\nsession %s    policy %s    n=%d\n", slo.ID, slo.Policy, slo.SLO.N)
	fmt.Fprintf(&b, "ratio  windowed %.3f (window %d)    cumulative %.3f    ewma %.3f\n",
		slo.SLO.WindowedRatio, slo.SLO.Window, slo.SLO.CumulativeRatio, slo.SLO.EWMA)
	ratioHist := histValues(hist, client.SessionSeries("dc_session_windowed_ratio", session))
	if len(ratioHist) == 0 {
		// Servers without the history endpoint fall back to the SLO
		// reply's request-indexed series.
		ratioHist = slo.SLO.Series
	}
	if spark := stats.Sparkline(ratioHist); spark != "" {
		fmt.Fprintf(&b, "  %s\n", spark)
	}
	if p99 := histValues(hist, "dc_engine_decision_seconds_p99"); len(p99) > 0 {
		fmt.Fprintf(&b, "decision p99 %.3f ms  %s\n", p99[len(p99)-1]*1e3, stats.Sparkline(p99))
	}
	if shed := histValues(hist, client.SessionSeries("dc_session_batches_shed_total", session)); len(shed) > 0 {
		fmt.Fprintf(&b, "shed rate/s  %.3f     %s\n", shed[len(shed)-1], stats.Sparkline(shed))
	}

	b.WriteString("\nservers:\n  srv  copy  caching     transfer    xfers  total\n")
	for _, sc := range slo.Breakdown {
		if !sc.Live && sc.Caching == 0 && sc.Transfers == 0 {
			continue
		}
		copyMark := "."
		if sc.Live {
			copyMark = "*"
		}
		fmt.Fprintf(&b, "  %-4d %-5s %-11.4g %-11.4g %-6d %.4g\n",
			sc.Server, copyMark, sc.Caching, sc.Transfer, sc.Transfers, sc.Cost())
	}

	writePlannerPanel(&b, ctx, sess, hist)
	writeAlerts(&b, alerts, hist.Annotations)
	writeShadowLeaderboard(&b, ctx, sess)

	if tr, err := sess.Trace(ctx); err == nil && len(tr.Events) > 0 {
		b.WriteString("\nrecent events:\n")
		events := tr.Events
		if len(events) > 8 {
			events = events[len(events)-8:]
		}
		for _, ev := range events {
			kind, _ := json.Marshal(ev.Kind)
			line := fmt.Sprintf("  t=%-9.4g %-12s srv %d", ev.At, strings.Trim(string(kind), `"`), ev.Server)
			if ev.From != 0 {
				line += fmt.Sprintf(" <- %d", ev.From)
			}
			b.WriteString(line + "\n")
		}
	}

	// The session's worst retained traces, highest summed regret first —
	// the ids paste straight into GET /v1/traces/{id}.
	if traces, err := cl.Traces(ctx, client.TraceQuery{Session: session, Limit: 5}); err == nil && traces.Count > 0 {
		b.WriteString("\nslow traces (by regret):\n  trace id                          duration    regret   decision\n")
		for _, ts := range traces.Traces {
			dec := ts.Decision
			if dec == "" {
				dec = "-"
			}
			fmt.Fprintf(&b, "  %s  %8.3f ms  %+8.4f  %s\n",
				ts.TraceID, ts.Duration*1e3, ts.Regret, dec)
		}
	}

	writeTopItems(&b, ctx, cl, pool, hist)
	return b.String(), nil
}

// fetchHistory pulls one windowed-history reply covering every series
// the frame's sparklines read. Errors degrade to an empty reply — older
// servers without the endpoint still render (with client-side series).
func fetchHistory(ctx context.Context, cl *client.Client, session, pool string, win time.Duration) client.MetricsHistoryResponse {
	sel := []string{"dc_engine_decision_seconds_p99"}
	if session != "" {
		sel = append(sel,
			client.SessionSeries("dc_session_windowed_ratio", session),
			client.SessionSeries("dc_session_batches_shed_total", session),
			client.SessionSeries("dc_planner_mispredicts", session),
			client.SessionSeries("dc_planner_confidence", session),
		)
	}
	if pool != "" {
		sel = append(sel, client.PoolSeries("dc_pool_cost_over_optimum", pool))
	}
	hist, err := cl.History(ctx, client.HistoryQuery{Series: sel, Window: win, Agg: "avg"})
	if err != nil {
		return client.MetricsHistoryResponse{}
	}
	return hist
}

// histValues extracts one series' point values, oldest first.
func histValues(hist client.MetricsHistoryResponse, key string) []float64 {
	for _, sr := range hist.Series {
		if sr.Key != key {
			continue
		}
		vals := make([]float64, len(sr.Points))
		for i, p := range sr.Points {
			vals[i] = p.V
		}
		return vals
	}
	return nil
}

// writePlannerPanel renders the hybrid planner's standing — gate state,
// plan count and depth, predictor confidence, predicted-hit ratio and
// mispredicts, with confidence and mispredict-rate history when the
// server retains it. No-op on sessions whose live policy runs no planner.
func writePlannerPanel(b *strings.Builder, ctx context.Context, sess *client.Session, hist client.MetricsHistoryResponse) {
	st, err := sess.State(ctx)
	if err != nil || st.Planner == nil {
		return
	}
	p := st.Planner
	gate := "closed (SC fallback)"
	if p.GateOpen {
		gate = "open (planning)"
	}
	fmt.Fprintf(b, "\nplanner (hybrid horizon=%d order=%d):  gate %s\n", p.Horizon, p.Order, gate)
	fmt.Fprintf(b, "  plans %-6d depth %-4d confidence %.3f  predicted-hit %.3f  mispredicts %d\n",
		p.Plans, p.PlanDepth, p.Confidence, p.PredictedHitRatio, p.Mispredicts)
	if conf := histValues(hist, client.SessionSeries("dc_planner_confidence", sess.ID)); len(conf) > 0 {
		fmt.Fprintf(b, "  confidence %s", stats.Sparkline(conf))
		if mis := histValues(hist, client.SessionSeries("dc_planner_mispredicts", sess.ID)); len(mis) > 0 {
			fmt.Fprintf(b, "  mispredicts %s", stats.Sparkline(mis))
		}
		b.WriteString("\n")
	}
}

// writeShadowLeaderboard renders the session's counterfactual policy
// standings ranked cheapest-first, the live row marked. No-op when the
// session runs no shadow policies (the /shadow route 404s).
func writeShadowLeaderboard(b *strings.Builder, ctx context.Context, sess *client.Session) {
	sr, err := sess.Shadow(ctx)
	if err != nil || len(sr.Standings) == 0 {
		return
	}
	rows := make([]client.ShadowStanding, len(sr.Standings))
	copy(rows, sr.Standings)
	sort.SliceStable(rows, func(i, j int) bool {
		// Dead shadows sink to the bottom; the rest rank by exact cost.
		if (rows[i].Err == "") != (rows[j].Err == "") {
			return rows[i].Err == ""
		}
		return rows[i].Cost < rows[j].Cost
	})
	b.WriteString("\npolicy leaderboard (counterfactual):\n")
	b.WriteString("  policy                     cost     /opt  windowed  diverged\n")
	for _, row := range rows {
		name := row.Policy
		if row.Live {
			name += " (live)"
		}
		if row.Err != "" {
			fmt.Fprintf(b, "  %-22s dead: %s\n", name, row.Err)
			continue
		}
		fmt.Fprintf(b, "  %-22s %9.4g %8.3f %9.4g %9d\n",
			name, row.Cost, row.CostOverOptimum, row.WindowedCost, row.Divergence)
	}
}

// writeTopItems renders the pool's heaviest items — by cumulative cost
// and by regret — alongside its tenant rollups. No-op when no pool is
// live or the pool vanished between the scrape and the read.
func writeTopItems(b *strings.Builder, ctx context.Context, cl *client.Client, pool string, hist client.MetricsHistoryResponse) {
	if pool == "" {
		return
	}
	h := cl.OpenPool(pool)
	state, err := h.State(ctx)
	if err != nil {
		return
	}
	fmt.Fprintf(b, "\npool %s    items %d (live %d)    evictions %d    ratio %.3f\n",
		pool, state.Items, state.LiveItems, state.Evictions, state.Ratio)
	if ro := histValues(hist, client.PoolSeries("dc_pool_cost_over_optimum", pool)); len(ro) > 0 {
		fmt.Fprintf(b, "  /opt %s\n", stats.Sparkline(ro))
	}
	if sr, err := h.Shadow(ctx); err == nil && len(sr.Standings) > 0 {
		b.WriteString("pool policy leaderboard (counterfactual):\n")
		for _, row := range sr.Standings {
			name := row.Policy
			if row.Live {
				name += " (live)"
			}
			mark := " "
			if row.Best {
				mark = "*"
			}
			fmt.Fprintf(b, "%s %-22s cost %-12.4g /opt %-8.3f diverged %d\n",
				mark, name, row.Cost, row.CostOverOptimum, row.Divergence)
		}
	}
	for _, by := range []string{"cost", "regret"} {
		top, err := h.TopItems(ctx, by, 5)
		if err != nil || len(top.Items) == 0 {
			continue
		}
		fmt.Fprintf(b, "top items by %s:\n  key                        n      %-10s ratio\n", by, by)
		for _, it := range top.Items {
			key := it.Item
			if it.Tenant != "" {
				key = it.Tenant + "/" + it.Item
			}
			metric := it.Cost
			if by == "regret" {
				metric = it.Regret
			}
			live := " "
			if it.Live {
				live = "*"
			}
			fmt.Fprintf(b, "  %-25s%s %-6d %-10.4g %.3f\n", key, live, it.N, metric, it.Ratio)
		}
	}
	if len(state.Tenants) > 1 {
		b.WriteString("tenants:\n")
		for _, ts := range state.Tenants {
			name := ts.Tenant
			if name == "" {
				name = "(default)"
			}
			fmt.Fprintf(b, "  %-12s n=%-7d ratio %.3f  windowed %.3f\n",
				name, ts.N, ts.Ratio, ts.WindowedRatio)
		}
	}
}

// writeRecorderLine prints the flight-recorder standing when the server
// publishes dc_recorder_* series (dcserved -record-dir); silent otherwise.
func writeRecorderLine(b *strings.Builder, samples map[string]float64) {
	recOf := func(name string) (float64, string, bool) {
		for series, v := range samples {
			if strings.HasPrefix(series, name+"{") {
				mode := ""
				if i := strings.Index(series, `mode="`); i >= 0 {
					rest := series[i+len(`mode="`):]
					if j := strings.IndexByte(rest, '"'); j >= 0 {
						mode = rest[:j]
					}
				}
				return v, mode, true
			}
		}
		return 0, "", false
	}
	records, mode, ok := recOf("dc_recorder_records")
	if !ok {
		return
	}
	bytes, _, _ := recOf("dc_recorder_bytes")
	files, _, _ := recOf("dc_recorder_files")
	dropped, _, _ := recOf("dc_recorder_dropped")
	fmt.Fprintf(b, "recorder %s: %.0f records  %.1f MiB  %.0f file(s)  dropped %.0f\n",
		mode, records, bytes/(1<<20), files, dropped)
}

func writeAlerts(b *strings.Builder, alerts client.AlertsResponse, anns []client.HistoryAnnotation) {
	b.WriteString("\nalerts:")
	if len(alerts.Alerts) == 0 {
		b.WriteString(" none\n")
	} else {
		fmt.Fprintf(b, " %d firing\n", alerts.Firing)
		for _, a := range alerts.Alerts {
			state, _ := json.Marshal(a.Alert.State)
			fmt.Fprintf(b, "  %-9s %s %s  value %.3f  threshold %g  since t=%.4g\n",
				strings.Trim(string(state), `"`), a.Session, a.Alert.Rule.Name,
				a.Alert.Value, a.Alert.Rule.Threshold, a.Alert.Since)
		}
	}
	if len(anns) == 0 {
		return
	}
	// The timeline's most recent transitions (SLO rules and metric
	// anomalies alike); a trace id names the guilty exemplar.
	if len(anns) > 5 {
		anns = anns[len(anns)-5:]
	}
	b.WriteString("recent transitions:\n")
	for _, a := range anns {
		line := fmt.Sprintf("  %s %s %s -> %s  value %.3f",
			time.Unix(0, int64(a.At*1e9)).Format("15:04:05"), a.Rule, a.From, a.To, a.Value)
		if a.TraceID != "" {
			line += "  trace " + a.TraceID
		}
		b.WriteString(line + "\n")
	}
}

// pickSession returns the lexicographically first session label found on
// a dc_session_cost series, or "".
func pickSession(samples map[string]float64) string {
	var ids []string
	for series := range samples {
		if !strings.HasPrefix(series, `dc_session_cost{`) {
			continue
		}
		rest := strings.TrimPrefix(series, `dc_session_cost{session="`)
		if end := strings.Index(rest, `"`); end >= 0 {
			ids = append(ids, rest[:end])
		}
	}
	sort.Strings(ids)
	if len(ids) == 0 {
		return ""
	}
	return ids[0]
}

// pickPool returns the lexicographically first pool label found on a
// dc_pool_items series, or "".
func pickPool(samples map[string]float64) string {
	var ids []string
	for series := range samples {
		if !strings.HasPrefix(series, `dc_pool_items{`) {
			continue
		}
		rest := strings.TrimPrefix(series, `dc_pool_items{pool="`)
		if end := strings.Index(rest, `"`); end >= 0 {
			ids = append(ids, rest[:end])
		}
	}
	sort.Strings(ids)
	if len(ids) == 0 {
		return ""
	}
	return ids[0]
}
