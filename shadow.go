package datacache

import (
	"fmt"

	"datacache/internal/engine"
	"datacache/internal/obs"
)

// DefaultShadowWindow is the rolling cost window (requests) the
// shadow-beats-live comparison uses when neither ShadowWindow nor
// SLOWindow is set.
const DefaultShadowWindow = 64

// DefaultShadowMargin is the fraction by which the best shadow must beat
// the live policy's windowed cost before the shadow_beats_live alert
// rule starts breaching.
const DefaultShadowMargin = 0.25

// ShadowAlertRuleName names the alert rule a shadowed session evaluates
// against the live-over-best-shadow windowed cost ratio.
const ShadowAlertRuleName = "shadow_beats_live"

// PlannerAlertRuleName names the alert rule a hybrid session evaluates
// against its built-in "sc" shadow: it breaches when planning makes the
// live policy pay more than the pure online fallback would have.
const PlannerAlertRuleName = "planner_worse_than_sc"

// ShadowTotals is the cheap accumulator readout of one shadow policy;
// see Session.ShadowTotals.
type ShadowTotals = engine.ShadowTotals

// ShadowStanding is one policy's line in the counterfactual comparison a
// shadowed Session or Pool maintains: what that policy would have paid
// on exactly the live traffic. The live policy appears as a standing
// too (Live true), so a standings slice is a complete leaderboard.
type ShadowStanding struct {
	Policy          string  `json:"policy"`
	Live            bool    `json:"live,omitempty"` // the policy actually serving
	Best            bool    `json:"best,omitempty"` // minimum-cost line
	Cost            float64 `json:"cost"`
	CostOverOptimum float64 `json:"costOverOptimum"`
	WindowedCost    float64 `json:"windowedCost"`
	Hits            int     `json:"hits"`
	Transfers       int     `json:"transfers"`
	Drops           int     `json:"drops"`
	Divergence      int     `json:"divergence"` // requests decided differently from live
	Err             string  `json:"error,omitempty"`
}

// ShadowReport is the full counterfactual readout: every policy's
// standing (live first), the best policy's label, and the
// shadow_beats_live alert when the margin rule is enabled.
type ShadowReport struct {
	Window    int              `json:"window"` // rolling cost window (requests)
	Margin    float64          `json:"margin"` // alert margin (< 0: alert disabled)
	Best      string           `json:"best"`   // label of the minimum-cost policy
	Standings []ShadowStanding `json:"standings"`
	Alert     *Alert           `json:"alert,omitempty"`
}

// shadowRule builds the shadow_beats_live alert rule for a margin: the
// tracked value is the live policy's windowed cost over the best
// shadow's, so it breaches once live costs (1+margin)× the best shadow,
// clears below (1+margin/2)×, and needs three consecutive breaches —
// the same shape as Theorem3Rule.
func shadowRule(margin float64) AlertRule {
	return AlertRule{
		Name:       ShadowAlertRuleName,
		Threshold:  1 + margin,
		Hysteresis: margin / 2,
		For:        3,
	}
}

// plannerRule builds the planner_worse_than_sc alert rule: the tracked
// value is the hybrid live policy's windowed cost over its sc shadow's,
// with the same threshold/hysteresis/streak shape as shadowRule — the
// planner must not merely trail SC within noise, it must clearly lose
// for three consecutive windows before the rule fires.
func plannerRule(margin float64) AlertRule {
	return AlertRule{
		Name:       PlannerAlertRuleName,
		Threshold:  1 + margin,
		Hysteresis: margin / 2,
		For:        3,
	}
}

// initShadows wires the shadow set and the shadow_beats_live tracker
// into a freshly created session.
func (s *Session) initShadows(m int, origin ServerID, opts *SessionOptions) error {
	if len(opts.ShadowPolicies) == 0 {
		return nil
	}
	window := opts.ShadowWindow
	if window <= 0 {
		window = opts.SLOWindow
	}
	if window <= 0 {
		window = DefaultShadowWindow
	}
	// Labels must be unique among shadows; duplicating the live policy's
	// name is allowed — shadowing the live policy itself is the standard
	// self-check that the counterfactual accounting is exact.
	seen := make(map[string]bool, len(opts.ShadowPolicies))
	ds := make([]engine.ShadowDecider, 0, len(opts.ShadowPolicies))
	for _, sp := range opts.ShadowPolicies {
		d, err := sp.decider()
		if err != nil {
			return err
		}
		label := sp.label()
		if seen[label] {
			return fmt.Errorf("datacache: duplicate shadow policy label %q", label)
		}
		seen[label] = true
		ds = append(ds, engine.ShadowDecider{Name: label, D: d})
	}
	ss, err := engine.NewShadowSet(engine.State{M: m, Origin: origin, Model: s.cm}, window, ds)
	if err != nil {
		return err
	}
	s.shadows = ss
	s.shadowWindow = window
	s.shadowMargin = opts.ShadowMargin
	if s.shadowMargin == 0 {
		s.shadowMargin = DefaultShadowMargin
	}
	if s.shadowMargin > 0 {
		s.shadowAlert = obs.NewTracker(shadowRule(s.shadowMargin))
	}
	return nil
}

// observeShadows feeds one served request to every shadow, returning the
// divergence bitmask, and advances the shadow_beats_live tracker.
func (s *Session) observeShadows(server ServerID, t float64, d *Decision) {
	if s.shadows == nil {
		return
	}
	ed := engine.Decision{Server: server, Time: t, Hit: d.Hit, From: d.From}
	d.ShadowDiverged = s.shadows.Serve(server, t, ed, d.Cost)
	if s.shadowAlert != nil {
		if _, best := s.shadows.BestWindowed(); best > 0 {
			s.shadowAlert.Observe(t, s.shadows.LiveWindowedCost()/best)
		}
	}
	if s.plannerAlert != nil {
		if sc := s.shadows.WindowedCost(s.scShadowIdx); sc > 0 {
			s.plannerAlert.Observe(t, s.shadows.LiveWindowedCost()/sc)
		}
	}
}

// ShadowNames returns the shadow policy labels in evaluation order (bit
// i of Decision.ShadowDiverged corresponds to ShadowNames()[i]), or nil
// when the session runs no shadows. The slice is shared; treat it as
// read-only.
func (s *Session) ShadowNames() []string {
	if s.shadows == nil {
		return nil
	}
	return s.shadows.Names()
}

// ShadowCostLive returns shadow i's running cost priced by the O(M)
// accumulator path — the cheap per-serve feed gauge publishers and pool
// aggregation use. See Stream.CostLive for how it relates to the exact
// schedule-priced cost.
func (s *Session) ShadowCostLive(i int) float64 { return s.shadows.CostLive(i) }

// CostLive returns the live policy's cost priced by the same O(M)
// accumulator path as ShadowCostLive, for like-for-like comparisons on
// the serve path. Cost remains the canonical (schedule-priced) total.
func (s *Session) CostLive() float64 { return s.stream.CostLive(s.cm) }

// ShadowTotals returns shadow i's cheap accumulator readout (CostLive
// pricing) — what Pool eviction folds into its retained accounting.
func (s *Session) ShadowTotals(i int) ShadowTotals { return s.shadows.Totals(i) }

// ShadowWindowedCosts reports the rolling windowed cost of the live
// policy and each shadow (indexed like ShadowNames); nil without
// shadows.
func (s *Session) ShadowWindowedCosts() (live float64, shadows []float64) {
	if s.shadows == nil {
		return 0, nil
	}
	out := make([]float64, s.shadows.Len())
	for i := range out {
		out[i] = s.shadows.WindowedCost(i)
	}
	return s.shadows.LiveWindowedCost(), out
}

// ShadowAlert returns the shadow_beats_live rule's standing, or false
// when the session runs no shadows or the margin rule is disabled.
func (s *Session) ShadowAlert() (Alert, bool) {
	if s.shadowAlert == nil {
		return Alert{}, false
	}
	return s.shadowAlert.Alert(), true
}

// SetShadowTransitionHook installs h (nil detaches) to observe
// shadow_beats_live state changes synchronously from Serve, mirroring
// SLO.SetTransitionHook. It is a no-op without the shadow alert.
func (s *Session) SetShadowTransitionHook(h obs.TransitionHook) {
	if s.shadowAlert != nil {
		s.shadowAlert.SetTransitionHook(h)
	}
}

// PlannerAlert returns the planner_worse_than_sc rule's standing, or
// false when the live policy is not hybrid or the margin rule is
// disabled.
func (s *Session) PlannerAlert() (Alert, bool) {
	if s.plannerAlert == nil {
		return Alert{}, false
	}
	return s.plannerAlert.Alert(), true
}

// SetPlannerTransitionHook installs h (nil detaches) to observe
// planner_worse_than_sc state changes synchronously from Serve,
// mirroring SetShadowTransitionHook. It is a no-op without the planner
// alert.
func (s *Session) SetPlannerTransitionHook(h obs.TransitionHook) {
	if s.plannerAlert != nil {
		s.plannerAlert.SetTransitionHook(h)
	}
}

// Alerts merges the SLO rules' standings with the shadow_beats_live and
// planner_worse_than_sc standings, in that order. Nil when the session
// tracks none.
func (s *Session) Alerts() []Alert {
	var out []Alert
	if s.slo != nil {
		out = s.slo.Alerts()
	}
	if a, ok := s.ShadowAlert(); ok {
		out = append(out, a)
	}
	if a, ok := s.PlannerAlert(); ok {
		out = append(out, a)
	}
	return out
}

// ShadowReport builds the full counterfactual readout, or nil when the
// session runs no shadows. Costs are exact (schedule-priced, the same
// computation as Cost), so a shadow running the live policy's own
// decider reports the live cost bit for bit; the query is O(n) per
// policy and meant for reports and routes, not the serve path.
func (s *Session) ShadowReport() *ShadowReport {
	if s.shadows == nil {
		return nil
	}
	opt := s.OptimalCost()
	rep := &ShadowReport{
		Window:    s.shadowWindow,
		Margin:    s.shadowMargin,
		Standings: make([]ShadowStanding, 0, s.shadows.Len()+1),
	}
	rep.Standings = append(rep.Standings, ShadowStanding{
		Policy:          s.policy,
		Live:            true,
		Cost:            s.Cost(),
		CostOverOptimum: ratioOf(s.Cost(), opt),
		WindowedCost:    s.shadows.LiveWindowedCost(),
		Hits:            s.Hits(),
		Transfers:       s.Transfers(),
		Drops:           s.stream.Drops(),
	})
	for i := 0; i < s.shadows.Len(); i++ {
		st := ShadowStanding{
			Policy:          s.shadows.Names()[i],
			Cost:            s.shadows.Cost(i),
			CostOverOptimum: ratioOf(s.shadows.Cost(i), opt),
			WindowedCost:    s.shadows.WindowedCost(i),
			Hits:            s.shadows.Hits(i),
			Transfers:       s.shadows.Transfers(i),
			Drops:           s.shadows.Drops(i),
			Divergence:      s.shadows.Divergence(i),
		}
		if err := s.shadows.Err(i); err != nil {
			st.Err = err.Error()
		}
		rep.Standings = append(rep.Standings, st)
	}
	best := 0
	for i := 1; i < len(rep.Standings); i++ {
		if rep.Standings[i].Err == "" && rep.Standings[i].Cost < rep.Standings[best].Cost {
			best = i
		}
	}
	rep.Standings[best].Best = true
	rep.Best = rep.Standings[best].Policy
	if a, ok := s.ShadowAlert(); ok {
		rep.Alert = &a
	}
	return rep
}

// Shadows returns the counterfactual standings — the live policy first,
// then every shadow in option order, with Best marking the minimum-cost
// line — or nil when the session runs no shadows.
func (s *Session) Shadows() []ShadowStanding {
	rep := s.ShadowReport()
	if rep == nil {
		return nil
	}
	return rep.Standings
}
