// Service: drive the HTTP planning service end to end as a client — start
// it in-process, generate a workload through the API, optimize it, simulate
// the online policy against it, and stream requests into an incremental
// planning session whose optimum updates live.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"datacache/internal/model"
	"datacache/internal/service"
)

func main() {
	ts := httptest.NewServer(service.New())
	defer ts.Close()
	fmt.Println("planning service up at", ts.URL)

	// 1. Generate a sticky workload through the API.
	var seq model.Sequence
	post(ts.URL+"/v1/generate", map[string]interface{}{
		"workload": "markov", "m": 6, "n": 300, "seed": 11, "gap": 0.8,
	}, &seq)
	fmt.Printf("generated %d requests over %d servers\n", seq.N(), seq.M)

	// 2. Optimize off-line.
	var opt service.OptimizeResponse
	post(ts.URL+"/v1/optimize", service.OptimizeRequest{
		Sequence: &seq,
		Model:    service.CostModelDTO{Mu: 1, Lambda: 2},
	}, &opt)
	fmt.Printf("off-line optimum %.2f (bounds [%.2f, %.2f], single-copy %.2f)\n",
		opt.Cost, opt.LowerBound, opt.UpperBound, opt.SingleCopy)

	// 3. Simulate Speculative Caching online.
	var sim service.SimulateResponse
	post(ts.URL+"/v1/simulate", service.SimulateRequest{
		Sequence: &seq,
		Model:    service.CostModelDTO{Mu: 1, Lambda: 2},
		Policy:   "sc",
	}, &sim)
	fmt.Printf("online %s: cost %.2f, ratio %.3f (bound 3)\n", sim.Policy, sim.Cost, sim.Ratio)

	// 4. Stream the first 10 requests into an incremental planning session.
	var st service.StreamState
	post(ts.URL+"/v1/stream", map[string]interface{}{
		"m": seq.M, "origin": 1, "model": map[string]float64{"mu": 1, "lambda": 2},
	}, &st)
	for i := 0; i < 10 && i < seq.N(); i++ {
		post(ts.URL+"/v1/stream/"+st.ID+"/append", service.StreamAppendRequest{
			Server: seq.Requests[i].Server,
			Time:   seq.Requests[i].Time,
		}, &st)
		fmt.Printf("  after request %2d: optimum so far %.3f\n", st.N, st.Cost)
	}
}

func post(url string, body, out interface{}) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %v", url, resp.StatusCode, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}
