// Mobility: the scenario motivating the paper's off-line setting. Mobile
// users roam a field of base stations; their historical trajectories train
// a Markov predictor; the predicted future request sequence is optimized
// off-line; and the resulting plan is replayed against the true future,
// paying a fallback transfer per misprediction. The plan's total cost is
// compared with pure-online Speculative Caching and the clairvoyant
// optimum.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"math/rand"

	"datacache"
	"datacache/internal/offline"
	"datacache/internal/online"
	"datacache/internal/stats"
	"datacache/internal/trajectory"
)

func main() {
	// Nine base stations on a 3x3 grid; one roaming user whose movement is
	// 90%-sticky Markov cell-hopping — the "highly predictable" human
	// mobility of the paper's introduction.
	field := trajectory.GridField(9, 1.0)
	walker := trajectory.MarkovCells{Field: field, Stay: 0.9, Neighbors: 3, ReqGap: 0.9}
	cm := datacache.Unit

	rng := rand.New(rand.NewSource(2026))
	history := walker.Generate(rng, 5000) // mined service logs
	future := walker.Generate(rng, 500)   // what will actually happen

	pred := trajectory.NewPredictor(2)
	pred.Train(trajectory.Servers(history))

	rep, err := trajectory.PlanAndExecute(pred, future, cm)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := offline.FastDP(future, cm)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := online.Run(online.SpeculativeCaching{}, future, cm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained on %d visits; next-cell prediction accuracy on the future: %.1f%%\n",
		history.N(), 100*rep.Accuracy)
	table := &stats.Table{Header: []string{"strategy", "cost", "vs optimum"}}
	table.Add("clairvoyant optimum (FastDP on the true future)", opt.Cost(), 1.0)
	table.Add(fmt.Sprintf("predicted plan + %d fallbacks", rep.Fallbacks), rep.TotalCost, rep.TotalCost/opt.Cost())
	table.Add("pure-online SC", sc.Stats.Cost, sc.Stats.Cost/opt.Cost())
	fmt.Print(table.String())
	fmt.Println("\nthe plan's gap to the optimum is exactly the misprediction bill:")
	fmt.Printf("  plan cost %.4g + fallback transfers %.4g = %.4g\n",
		rep.PlanCost, rep.FallbackCost, rep.TotalCost)
}
