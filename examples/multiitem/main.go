// Multi-item: a data service rarely hosts one object. Under the
// homogeneous cost model, items are independent — each item's placement is
// optimized (or served online) on its own — so a service planner simply
// runs the machinery per item and aggregates. This example provisions a
// catalog of items with different popularity profiles and cost rates,
// compares the planned (off-line) bill with the online (SC) bill per item,
// and totals the account.
//
//	go run ./examples/multiitem
package main

import (
	"fmt"
	"log"
	"math/rand"

	"datacache"
	"datacache/internal/stats"
	"datacache/internal/workload"
)

type item struct {
	name string
	cm   datacache.CostModel
	gen  workload.Generator
	n    int
}

func main() {
	const m = 12
	catalog := []item{
		// A hot item: cheap to cache relative to moving it around.
		{"hot-video", datacache.CostModel{Mu: 1, Lambda: 8}, workload.Zipf{M: m, S: 1.8, MeanGap: 0.5}, 3000},
		// A warm item with commuter locality.
		{"user-profile", datacache.CostModel{Mu: 1, Lambda: 2}, workload.Commuter{
			M: m, Route: []datacache.ServerID{1, 4, 1, 9}, StopLen: 8, StopGap: 0.3, TravelGap: 6,
		}, 2000},
		// A cold item: caching is expensive, requests are scattered.
		{"archive-blob", datacache.CostModel{Mu: 4, Lambda: 1}, workload.Uniform{M: m, MeanGap: 3}, 500},
	}

	table := &stats.Table{Header: []string{"item", "requests", "planned bill", "online bill", "online/planned"}}
	var totalPlanned, totalOnline float64
	rng := rand.New(rand.NewSource(7))
	for _, it := range catalog {
		seq := it.gen.Generate(rng, it.n)
		planned, err := datacache.OptimalCost(seq, it.cm)
		if err != nil {
			log.Fatal(err)
		}
		run, err := datacache.Serve(datacache.SpeculativeCaching{}, seq, it.cm)
		if err != nil {
			log.Fatal(err)
		}
		table.Add(it.name, it.n, planned, run.Stats.Cost, run.Stats.Cost/planned)
		totalPlanned += planned
		totalOnline += run.Stats.Cost
	}
	table.Add("TOTAL", "", totalPlanned, totalOnline, totalOnline/totalPlanned)
	fmt.Print(table.String())
	fmt.Println("\nper-item independence under the homogeneous model means the service")
	fmt.Println("bill is the sum of per-item optima; the online premium stays under 3x.")
}
