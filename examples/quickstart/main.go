// Quickstart: optimize a known request sequence off-line, serve the same
// sequence online with Speculative Caching, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datacache"
)

func main() {
	// A shared data item starts on server 1 of a 4-server cloud. Seven
	// timed requests arrive across the cluster (this is the running example
	// of the paper's Section IV).
	seq := &datacache.Sequence{
		M:      4,
		Origin: 1,
		Requests: []datacache.Request{
			{Server: 2, Time: 0.5},
			{Server: 3, Time: 0.8},
			{Server: 4, Time: 1.1},
			{Server: 1, Time: 1.4},
			{Server: 2, Time: 2.6},
			{Server: 2, Time: 3.2},
			{Server: 3, Time: 4.0},
		},
	}
	// Caching costs μ=1 per unit time per live copy; any transfer costs λ=1.
	cm := datacache.Unit

	// Off-line: the O(mn) dynamic program finds the cheapest way to cache,
	// migrate and replicate the item so every request is served on time.
	res, err := datacache.Optimize(seq, cm)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := res.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("off-line optimum: %.4g (caching %.4g + transfers %.4g)\n",
		res.Cost(), sched.CachingCost(cm), sched.TransferCost(cm))
	fmt.Println("optimal schedule:", sched)

	// Online: Speculative Caching sees each request only when it arrives,
	// keeping every copy alive λ/μ past its last use. Theorem 3 guarantees
	// it never pays more than 3x the optimum.
	run, err := datacache.Serve(datacache.SpeculativeCaching{}, seq, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online SC: %.4g over %d transfers and %d cache hits\n",
		run.Stats.Cost, run.Stats.Transfers, run.Stats.CacheHits)

	pt, err := datacache.MeasureRatio(datacache.SpeculativeCaching{}, seq, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("competitive ratio: %.4f (provable bound: 3)\n", pt.Ratio)
}
