// Adversary: probe the worst case of Speculative Caching. The adversarial
// workload alternates two servers with gaps just past the speculative
// window, wasting every speculative tail; the example sweeps the overshoot
// slack and the cost ratio λ/μ, reporting the measured competitive ratio —
// which Theorem 3 caps at 3 no matter what the adversary does.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"math/rand"

	"datacache"
	"datacache/internal/stats"
	"datacache/internal/workload"
)

func main() {
	table := &stats.Table{Header: []string{"λ/μ", "slack", "SC cost", "OPT cost", "ratio"}}
	worst := 0.0
	var worstAt string
	for _, lambda := range []float64{0.5, 1, 2, 5} {
		cm := datacache.CostModel{Mu: 1, Lambda: lambda}
		for _, slack := range []float64{0.01, 0.1, 0.5, 1.0, 2.0} {
			gen := workload.Adversarial{M: 2, Window: cm.Delta(), Slack: slack}
			seq := gen.Generate(rand.New(rand.NewSource(1)), 2000)
			pt, err := datacache.MeasureRatio(datacache.SpeculativeCaching{}, seq, cm)
			if err != nil {
				log.Fatal(err)
			}
			table.Add(lambda, slack, pt.Cost, pt.Opt, pt.Ratio)
			if pt.Ratio > worst {
				worst = pt.Ratio
				worstAt = fmt.Sprintf("λ/μ=%g slack=%g", lambda, slack)
			}
			if pt.Ratio > 3 {
				log.Fatalf("Theorem 3 violated: ratio %v", pt.Ratio)
			}
		}
	}
	fmt.Print(table.String())
	fmt.Printf("\nworst measured ratio: %.4f at %s — the adversary cannot break 3\n", worst, worstAt)
}
