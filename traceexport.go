package datacache

import (
	"datacache/internal/recorder"
)

// RecordedTrace is one (session, tenant, item) key's workload
// reconstructed from a flight recording: the request sequence the
// serving layer actually saw, in the canonical model.Sequence form the
// trace package serializes and dcsim/dcopt consume. Recording in
// production and exporting traces closes the loop back to the off-line
// tooling — the same traffic can be re-simulated under any policy or
// solved exactly.
type RecordedTrace struct {
	Session string
	Tenant  string
	Item    string
	Seq     *Sequence
}

// RecordedTraces rebuilds each key's request sequence from one writer's
// recordings (in file order, as returned by recorder.ReadPath). Streams
// whose declarations are missing (torn prefixes) contribute nothing —
// a serve without a declared stream cannot be attributed to a key.
// Traces appear in order of each key's first declaration.
func RecordedTraces(recs []*recorder.Recording) []RecordedTrace {
	type keyID struct{ session, tenant, item string }
	byKey := map[keyID]*RecordedTrace{}
	byStream := map[uint32]*RecordedTrace{}
	var order []*RecordedTrace
	for _, rc := range recs {
		for i := range rc.Records {
			r := &rc.Records[i]
			switch r.Kind {
			case recorder.KindOpen:
				k := keyID{r.Info.Session, r.Info.Tenant, r.Info.Item}
				tr := byKey[k]
				if tr == nil {
					tr = &RecordedTrace{
						Session: k.session, Tenant: k.tenant, Item: k.item,
						Seq: &Sequence{M: r.Info.M, Origin: ServerID(r.Info.Origin)},
					}
					byKey[k] = tr
					order = append(order, tr)
				}
				byStream[r.Stream] = tr
			case recorder.KindServe:
				tr := byStream[r.Stream]
				if tr == nil {
					continue
				}
				tr.Seq.Requests = append(tr.Seq.Requests, Request{
					Server: ServerID(r.Server), Time: r.Time,
				})
			}
		}
	}
	out := make([]RecordedTrace, len(order))
	for i, tr := range order {
		out[i] = *tr
	}
	return out
}
