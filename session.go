package datacache

import (
	"context"
	"fmt"

	"datacache/internal/engine"
	"datacache/internal/model"
	"datacache/internal/obs"
	"datacache/internal/offline"
	"datacache/internal/planner"
	"datacache/internal/recorder"
)

// TraceEvent is one typed entry of a session's decision trace: a request
// arriving, a cache hit, a transfer, a drop, a speculative deadline firing,
// or an epoch restart. It is the same schema the simulator's Recorder uses
// (internal/cloudsim.TraceEvent), so offline and live traces are
// interchangeable.
type TraceEvent = obs.Event

// Observer receives every TraceEvent as it happens; see
// SessionOptions.Observer.
type Observer = obs.Observer

// Trace event kinds, re-exported for callers inspecting Session traces.
const (
	TraceRequest    = obs.KindRequest
	TraceHit        = obs.KindHit
	TraceTransfer   = obs.KindTransfer
	TraceDrop       = obs.KindDrop
	TraceTimer      = obs.KindTimer
	TraceEpochReset = obs.KindEpochReset
)

// ServerCost is one server's share of a session's accumulated cost; see
// Session.CostBreakdown.
type ServerCost = engine.ServerCost

// SLO is the rolling-window competitive-ratio tracker behind
// Session.SLO: windowed ratio, EWMA, and alert rules with hysteresis.
type SLO = obs.SLO

// SLOSnapshot is one point-in-time SLO reading.
type SLOSnapshot = obs.SLOSnapshot

// AlertRule configures one alert over the windowed competitive ratio.
type AlertRule = obs.Rule

// Alert is a snapshot of one rule's standing.
type Alert = obs.Alert

// AlertState is an alert rule's lifecycle position.
type AlertState = obs.AlertState

// Alert lifecycle states, re-exported for callers inspecting Session
// alerts.
const (
	AlertInactive = obs.AlertInactive
	AlertPending  = obs.AlertPending
	AlertFiring   = obs.AlertFiring
	AlertResolved = obs.AlertResolved
)

// Theorem3Rule is the default SLO alert: the windowed ratio exceeding
// the paper's 3-competitive bound (Theorem 3).
func Theorem3Rule() AlertRule { return obs.Theorem3Rule() }

// SessionOptions selects and parameterizes the policy behind a Session.
// The zero value (or a nil *SessionOptions) is the paper's canonical SC.
type SessionOptions struct {
	// Policy selects the live policy as a PolicySpec string: "sc"
	// (default), "ttl" (fixed retention window, requires a window),
	// "migrate" (single nomadic copy), "replicate"/"keep" (replicate on
	// first touch, never delete) or "hybrid" (prediction-fed planner with
	// SC fallback). Parameters may ride in the spec
	// ("ttl:window=0.5", "sc:epoch=16", "hybrid:horizon=8,order=2") or in
	// the fields below; spec-carried values win.
	Policy string
	// Window overrides the speculative window Δt = Lambda/Mu for "sc" and
	// "hybrid", and sets the retention window for "ttl". Ignored when the
	// Policy spec carries window=.
	Window float64
	// EpochTransfers enables SC's epoch restarts (0 disables them).
	// Ignored when the Policy spec carries epoch=.
	EpochTransfers int
	// TraceCap, when positive, keeps a bounded ring of the most recent
	// TraceCap decision events, readable via Trace. Zero disables the ring.
	TraceCap int
	// Observer, when set, additionally receives every decision event as it
	// happens (metrics hooks, live dashboards). It runs synchronously on
	// the serving path, so it must be cheap.
	Observer Observer
	// SLOWindow, when positive, tracks the competitive ratio over a
	// rolling window of that many requests (readable via SLO), with
	// SLORules evaluated after every served request. Zero disables SLO
	// tracking.
	SLOWindow int
	// SLORules overrides the alert rules evaluated on the windowed ratio.
	// Nil with SLOWindow > 0 installs the single Theorem3Rule.
	SLORules []AlertRule
	// ShadowPolicies, when non-empty, evaluates these policies in
	// lockstep with live serving on private copies of the cluster state,
	// accumulating what each would have paid on exactly this traffic.
	// Build the slice with WithShadowPolicies(specs...); read the
	// standings via Shadows / ShadowReport. At most engine.MaxShadows
	// policies; labels must be unique and differ from the live policy's.
	ShadowPolicies []ShadowPolicy
	// ShadowWindow sets the rolling cost window (requests) behind the
	// shadow-vs-live windowed comparison. Zero falls back to SLOWindow,
	// then DefaultShadowWindow.
	ShadowWindow int
	// ShadowMargin configures the shadow_beats_live alert: it breaches
	// when the live policy's windowed cost exceeds the best shadow's by
	// this fraction. Zero means DefaultShadowMargin; negative disables
	// the alert while keeping the shadows.
	ShadowMargin float64
	// Recorder, when set, captures every served request to the flight
	// recorder: NewSession opens a stream (declaring the instance and
	// policy), each Serve appends one serve record, and Close retires the
	// stream. Recording is fire-and-forget — recorder backpressure or
	// errors never fail the serving path.
	Recorder *recorder.Writer
	// RecordSession labels the recorder stream with the serving-layer
	// session id ("sn-3", "pl-1"); RecordTenant and RecordItem scope pool
	// streams. All ignored when Recorder is nil.
	RecordSession string
	RecordTenant  string
	RecordItem    string
}

// Decision reports what one live request caused: whether it hit a cached
// copy, where a miss was served from, and the running cost picture —
// accumulated policy cost, the exact off-line optimum of the prefix served
// so far, and their ratio.
type Decision struct {
	Server  ServerID // requested server
	Time    float64  // request time
	Hit     bool     // true when a live copy served it in place
	From    ServerID // transfer source on a miss (0 on a hit)
	Drops   int      // copies dropped while this request was served
	Cost    float64  // policy cost accumulated through this request
	Optimal float64  // off-line optimum of the prefix (FastDP, exact)
	Ratio   float64  // Cost / Optimal (1 when Optimal == 0)
	// Regret is this request's cost divergence from the clairvoyant
	// optimum: (online cost delta) − (optimum delta). Regrets telescope —
	// summed over every request they equal Cost − Optimal exactly — so
	// high-regret requests are precisely the ones that pushed the ratio.
	// Negative regret means the optimum's DP paid more for this prefix
	// step than the online policy did.
	Regret float64
	// ShadowDiverged is a bitmask over the session's shadow policies:
	// bit i is set when ShadowNames()[i] decided this request differently
	// from the live policy (hit/miss outcome or transfer source). Zero
	// without shadows, or when every shadow agreed. A bitmask rather
	// than a slice keeps the serve path allocation-free.
	ShadowDiverged uint64 `json:",omitempty"`
}

// Session serves live traffic one request at a time with no lookahead: each
// Serve feeds the request to the shared decision engine (the same engine.SC
// core behind SpeculativeCaching and the simulator policies) and, in
// lockstep, to the streaming off-line dynamic program, so every decision
// comes back with an exact competitive-ratio readout for the traffic seen so
// far. After n Serve calls the accumulated cost equals exactly what
// Serve(SpeculativeCaching{...}, seq, cm) reports for the same n requests.
//
// A Session is not safe for concurrent use; callers (such as the /v1/session
// HTTP endpoint) must serialize access.
type Session struct {
	policy string
	cm     CostModel
	stream *engine.Stream
	inc    *offline.Incremental
	ring   *obs.Ring // nil unless SessionOptions.TraceCap > 0
	slo    *obs.SLO  // nil unless SessionOptions.SLOWindow > 0
	closed bool
	final  *Schedule

	shadows      *engine.ShadowSet // nil unless SessionOptions.ShadowPolicies set
	shadowAlert  *obs.Tracker      // nil unless shadows with a margin rule
	shadowWindow int
	shadowMargin float64

	hybrid       *planner.Hybrid // nil unless the live policy is hybrid
	plannerAlert *obs.Tracker    // nil unless hybrid with an sc shadow and a margin rule
	scShadowIdx  int             // index of the "sc" shadow the planner alert compares against

	rec       *recorder.Writer // nil unless SessionOptions.Recorder set
	recStream uint32
	recTrace  string // trace id stamped on the next serve record

	prevCost, prevOpt float64 // last served totals, for SLO deltas
}

// NewSession opens a live serving session over m servers with the initial
// copy at origin (time 0). A nil opts selects the canonical SC policy.
func NewSession(m int, origin ServerID, cm CostModel, opts *SessionOptions) (*Session, error) {
	if opts == nil {
		opts = &SessionOptions{}
	}
	// The live policy is one PolicySpec: parse the spec string loosely,
	// merge in the option-level parameters where the spec left them unset,
	// and let the decider construction validate the result.
	var sp PolicySpec
	if opts.Policy != "" {
		var err error
		if sp, err = parsePolicySpec(opts.Policy); err != nil {
			return nil, err
		}
	}
	if sp.Window == 0 {
		sp.Window = opts.Window
	}
	if sp.EpochTransfers == 0 {
		sp.EpochTransfers = opts.EpochTransfers
	}
	d, err := sp.decider()
	if err != nil {
		return nil, err
	}
	policy := sp.name()
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	var ring *obs.Ring
	var ringObs obs.Observer // stays a true nil interface when untraced
	if opts.TraceCap > 0 {
		ring = &obs.Ring{Cap: opts.TraceCap}
		ringObs = ring
	}
	observer := obs.Multi(ringObs, opts.Observer)
	var hybrid *planner.Hybrid
	switch dd := d.(type) {
	case *engine.SC:
		if observer != nil {
			// Epoch restarts happen inside the decider, invisible to the
			// stream's action ledger; surface them through the analysis hook.
			dd.OnReset = func(t float64, keep model.ServerID) {
				observer.Observe(obs.Event{At: t, Kind: obs.KindEpochReset, Server: int(keep)})
			}
		}
	case *planner.Hybrid:
		hybrid = dd
		if observer != nil {
			dd.OnReset = func(t float64, keep model.ServerID) {
				observer.Observe(obs.Event{At: t, Kind: obs.KindEpochReset, Server: int(keep)})
			}
			dd.OnMispredict = func(t float64, predicted, actual model.ServerID) {
				observer.Observe(obs.Event{At: t, Kind: obs.KindMispredict, Server: int(actual), From: int(predicted)})
			}
		}
	}
	stream, err := engine.NewStream(d, engine.State{M: m, Origin: origin, Model: cm})
	if err != nil {
		return nil, err
	}
	stream.SetObserver(observer)
	inc, err := offline.NewIncremental(m, origin, cm)
	if err != nil {
		return nil, err
	}
	var slo *obs.SLO
	if opts.SLOWindow > 0 {
		rules := opts.SLORules
		if rules == nil {
			rules = []AlertRule{Theorem3Rule()}
		}
		slo = obs.NewSLO(opts.SLOWindow, rules...)
	}
	s := &Session{policy: policy, cm: cm, stream: stream, inc: inc, ring: ring, slo: slo, hybrid: hybrid, scShadowIdx: -1}
	if hybrid != nil {
		// A hybrid live policy always runs its own SC fallback as a shadow
		// — the built-in self-check that planning never loses to the pure
		// online policy — unless the caller already declared one labeled
		// "sc". The options are copied, not mutated.
		hasSC := false
		for _, shp := range opts.ShadowPolicies {
			if shp.label() == "sc" {
				hasSC = true
			}
		}
		if !hasSC {
			o := *opts
			o.ShadowPolicies = append(append([]PolicySpec{}, opts.ShadowPolicies...),
				PolicySpec{Window: sp.Window, EpochTransfers: sp.EpochTransfers, Label: "sc"})
			opts = &o
		}
	}
	if err := s.initShadows(m, origin, opts); err != nil {
		return nil, err
	}
	if hybrid != nil && s.shadows != nil {
		for i, name := range s.shadows.Names() {
			if name == "sc" {
				s.scShadowIdx = i
			}
		}
		if s.scShadowIdx >= 0 && s.shadowMargin > 0 {
			s.plannerAlert = obs.NewTracker(plannerRule(s.shadowMargin))
		}
	}
	if opts.Recorder != nil && !opts.Recorder.Closed() {
		s.rec = opts.Recorder
		s.recStream = s.rec.OpenStream(recorder.StreamInfo{
			Session: opts.RecordSession,
			Tenant:  opts.RecordTenant,
			Item:    opts.RecordItem,
			M:       m,
			Origin:  int(origin),
			Mu:      cm.Mu,
			Lambda:  cm.Lambda,
			// The full canonical spec, not the bare name, so replayed
			// hybrid sessions rebuild identical horizon/order parameters.
			Policy: sp.Spec(),
			Window: opts.Window,
			Epoch:  opts.EpochTransfers,
		})
	}
	return s, nil
}

// SetRecordTraceID stamps the W3C trace id carried by the next serve
// record(s), linking recording entries back to distributed-trace spans.
// It shares the session's synchronization: call it only while no Serve
// is in flight (the HTTP layer stamps it under the entry lock). A
// no-op without a recorder.
func (s *Session) SetRecordTraceID(id string) {
	if s.rec != nil {
		s.recTrace = id
	}
}

// Serve handles one live request. Times must be strictly increasing and
// positive; servers must lie in 1..m. The returned Decision carries the
// engine's verdict plus the exact prefix optimum from the streaming DP.
func (s *Session) Serve(server ServerID, t float64) (Decision, error) {
	if s.closed {
		return Decision{}, fmt.Errorf("datacache: session is closed")
	}
	ed, err := s.stream.Serve(server, t)
	if err != nil {
		return Decision{}, err
	}
	if err := s.inc.Append(model.Request{Server: server, Time: t}); err != nil {
		return Decision{}, fmt.Errorf("datacache: session state diverged: %v", err)
	}
	d := Decision{
		Server:  ed.Server,
		Time:    ed.Time,
		Hit:     ed.Hit,
		From:    ed.From,
		Drops:   ed.Drops,
		Cost:    s.stream.Cost(s.cm),
		Optimal: s.inc.Cost(),
	}
	d.Ratio = ratioOf(d.Cost, d.Optimal)
	d.Regret = (d.Cost - s.prevCost) - (d.Optimal - s.prevOpt)
	s.observeShadows(server, t, &d)
	if s.slo != nil {
		s.slo.Observe(t, d.Cost-s.prevCost, d.Optimal-s.prevOpt)
	}
	s.prevCost, s.prevOpt = d.Cost, d.Optimal
	if s.rec != nil {
		// Fire-and-forget: recorder backpressure must not fail serving.
		_ = s.rec.Append(recorder.Record{
			Kind:    recorder.KindServe,
			Stream:  s.recStream,
			Time:    d.Time,
			Server:  int(d.Server),
			From:    int(d.From),
			Hit:     d.Hit,
			Drops:   d.Drops,
			Cost:    d.Cost,
			Optimal: d.Optimal,
			TraceID: s.recTrace,
		})
	}
	return d, nil
}

// ServeBatchResult reports how a batch fared: one Decision per applied
// request, the index of the first rejected request (-1 when the whole
// batch applied) and the post-batch cost picture.
type ServeBatchResult struct {
	// Decisions holds one entry per applied request, in order; identical
	// to what the same requests served one Serve call at a time would
	// have returned.
	Decisions []Decision
	// FirstRejected is the index of the first request the engine refused
	// (out-of-range server, non-monotonic time), or -1 when every request
	// applied. Requests before it are applied and stay applied; requests
	// after it were not attempted.
	FirstRejected int
	// RejectReason explains the rejection ("" when FirstRejected is -1).
	RejectReason string
	// Cost, Optimal and Ratio snapshot the session after the batch —
	// equal to the last decision's readout when any request applied.
	Cost    float64
	Optimal float64
	Ratio   float64
}

// ServeBatch serves an ordered batch of requests under one call: each
// request runs through exactly the same path as Serve (engine decision,
// streaming-DP append, SLO observation), so a batch of n requests leaves
// the session in a state indistinguishable from n single Serve calls.
//
// Failure is partial: the first request the engine rejects stops the
// batch, with the prefix before it applied and reported in Decisions and
// FirstRejected naming the offender. A closed session rejects the whole
// batch with an error instead.
//
// The context is honored between requests: when ctx is canceled
// mid-batch, ServeBatch stops before the next request and returns the
// partial result alongside the context's error.
func (s *Session) ServeBatch(ctx context.Context, reqs []Request) (*ServeBatchResult, error) {
	if s.closed {
		return nil, fmt.Errorf("datacache: session is closed")
	}
	ctx = orBackground(ctx)
	res := &ServeBatchResult{
		Decisions:     make([]Decision, 0, len(reqs)),
		FirstRejected: -1,
	}
	for i, r := range reqs {
		if err := ctx.Err(); err != nil {
			s.snapshotInto(res)
			return res, err
		}
		d, err := s.Serve(r.Server, r.Time)
		if err != nil {
			res.FirstRejected = i
			res.RejectReason = err.Error()
			break
		}
		res.Decisions = append(res.Decisions, d)
	}
	s.snapshotInto(res)
	return res, nil
}

// orBackground normalizes a nil context to context.Background, so both
// batch paths (Session.ServeBatch, Pool.ServeBatch) treat a nil ctx as
// "never canceled" instead of panicking on ctx.Err.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// snapshotInto fills the post-batch cost/optimum/ratio readout.
func (s *Session) snapshotInto(res *ServeBatchResult) {
	res.Cost = s.Cost()
	res.Optimal = s.OptimalCost()
	res.Ratio = ratioOf(res.Cost, res.Optimal)
}

// N returns the number of requests served.
func (s *Session) N() int { return s.stream.N() }

// Hits returns how many requests were served by a live copy in place.
func (s *Session) Hits() int { return s.stream.Hits() }

// Transfers returns how many copy transfers the policy has performed.
func (s *Session) Transfers() int { return s.stream.Transfers() }

// Drops returns how many copies the policy has dropped (deadline
// expiries and policy drops alike).
func (s *Session) Drops() int { return s.stream.Drops() }

// Cost returns the policy cost accumulated through the last request.
func (s *Session) Cost() float64 { return s.stream.Cost(s.cm) }

// OptimalCost returns the exact off-line optimum of the requests served so
// far (what a clairvoyant scheduler would have paid).
func (s *Session) OptimalCost() float64 { return s.inc.Cost() }

// Ratio returns Cost / OptimalCost, the live competitive ratio (1 while the
// optimum is zero).
func (s *Session) Ratio() float64 { return ratioOf(s.Cost(), s.OptimalCost()) }

// CostBreakdown attributes the accumulated cost per server: caching cost
// for the time each server held a copy, transfer cost for the copies it
// received. The entries' Caching + Transfer sum to exactly Cost().
func (s *Session) CostBreakdown() []ServerCost { return s.stream.CostBreakdown(s.cm) }

// SLO returns the rolling-window ratio tracker, or nil when the session
// was opened without SLOWindow. The tracker shares the session's
// synchronization: read it only while no Serve is in flight.
func (s *Session) SLO() *SLO { return s.slo }

// Policy returns the canonical name of the session's policy.
func (s *Session) Policy() string { return s.policy }

// PlannerStats is the hybrid planner's point-in-time readout: plan
// counts and depth, predicted-vs-actual hit ratio, rolling confidence,
// and whether the confidence gate is open.
type PlannerStats = planner.Stats

// PlannerStats returns the hybrid planner readout, or false when the
// session's live policy is not hybrid. It shares the session's
// synchronization: read it only while no Serve is in flight.
func (s *Session) PlannerStats() (PlannerStats, bool) {
	if s.hybrid == nil {
		return PlannerStats{}, false
	}
	return s.hybrid.Stats(), true
}

// LiveCopies returns how many copies are currently alive.
func (s *Session) LiveCopies() int { return s.stream.Live() }

// Trace returns the retained decision events in arrival order, or nil
// when the session was opened without a TraceCap. The slice is shared
// with the ring; treat it as read-only.
func (s *Session) Trace() []TraceEvent {
	if s.ring == nil {
		return nil
	}
	return s.ring.Events()
}

// TraceDropped reports how many events the bounded trace has evicted
// (0 when tracing is disabled or the ring has not wrapped).
func (s *Session) TraceDropped() int {
	if s.ring == nil {
		return 0
	}
	return s.ring.Dropped()
}

// Closed reports whether Close has been called.
func (s *Session) Closed() bool { return s.closed }

// Schedule returns the schedule so far: live copies are truncated at the
// last request while the session is open, and closed out exactly once the
// session is closed. The returned schedule is the caller's to keep.
func (s *Session) Schedule() *Schedule { return s.stream.Snapshot() }

// Close ends the session at the time of the last request, finalizing the
// schedule. Further Serve calls fail; accessors keep reporting the final
// state.
func (s *Session) Close() (*Schedule, error) {
	if s.closed {
		return s.final, nil
	}
	sched, err := s.stream.Finish(s.stream.Now())
	if err != nil {
		return nil, err
	}
	s.closed = true
	s.final = sched
	if s.rec != nil {
		s.rec.CloseStream(s.recStream)
	}
	return sched, nil
}

func ratioOf(cost, opt float64) float64 {
	if opt > 0 {
		return cost / opt
	}
	return 1
}
