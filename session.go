package datacache

import (
	"fmt"

	"datacache/internal/engine"
	"datacache/internal/model"
	"datacache/internal/offline"
)

// SessionOptions selects and parameterizes the policy behind a Session.
// The zero value (or a nil *SessionOptions) is the paper's canonical SC.
type SessionOptions struct {
	// Policy chooses the decision rules: "sc" (default), "ttl" (fixed
	// retention window, requires Window > 0), "migrate" (single nomadic
	// copy) or "replicate"/"keep" (replicate on first touch, never delete).
	Policy string
	// Window overrides the speculative window Δt = Lambda/Mu for "sc" and
	// sets the retention window for "ttl".
	Window float64
	// EpochTransfers enables SC's epoch restarts (0 disables them).
	EpochTransfers int
}

// Decision reports what one live request caused: whether it hit a cached
// copy, where a miss was served from, and the running cost picture —
// accumulated policy cost, the exact off-line optimum of the prefix served
// so far, and their ratio.
type Decision struct {
	Server  ServerID // requested server
	Time    float64  // request time
	Hit     bool     // true when a live copy served it in place
	From    ServerID // transfer source on a miss (0 on a hit)
	Cost    float64  // policy cost accumulated through this request
	Optimal float64  // off-line optimum of the prefix (FastDP, exact)
	Ratio   float64  // Cost / Optimal (1 when Optimal == 0)
}

// Session serves live traffic one request at a time with no lookahead: each
// Serve feeds the request to the shared decision engine (the same engine.SC
// core behind SpeculativeCaching and the simulator policies) and, in
// lockstep, to the streaming off-line dynamic program, so every decision
// comes back with an exact competitive-ratio readout for the traffic seen so
// far. After n Serve calls the accumulated cost equals exactly what
// Serve(SpeculativeCaching{...}, seq, cm) reports for the same n requests.
//
// A Session is not safe for concurrent use; callers (such as the /v1/session
// HTTP endpoint) must serialize access.
type Session struct {
	policy string
	cm     CostModel
	stream *engine.Stream
	inc    *offline.Incremental
	closed bool
	final  *Schedule
}

// NewSession opens a live serving session over m servers with the initial
// copy at origin (time 0). A nil opts selects the canonical SC policy.
func NewSession(m int, origin ServerID, cm CostModel, opts *SessionOptions) (*Session, error) {
	if opts == nil {
		opts = &SessionOptions{}
	}
	var d engine.Decider
	policy := opts.Policy
	switch policy {
	case "", "sc":
		policy = "sc"
		d = &engine.SC{Window: opts.Window, EpochTransfers: opts.EpochTransfers}
	case "ttl":
		if opts.Window <= 0 {
			return nil, fmt.Errorf("datacache: ttl policy requires Window > 0")
		}
		d = &engine.SC{Window: opts.Window}
	case "migrate":
		d = &engine.Migrate{}
	case "replicate", "keep":
		policy = "replicate"
		d = &engine.Replicate{}
	default:
		return nil, fmt.Errorf("datacache: unknown session policy %q", opts.Policy)
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	stream, err := engine.NewStream(d, engine.State{M: m, Origin: origin, Model: cm})
	if err != nil {
		return nil, err
	}
	inc, err := offline.NewIncremental(m, origin, cm)
	if err != nil {
		return nil, err
	}
	return &Session{policy: policy, cm: cm, stream: stream, inc: inc}, nil
}

// Serve handles one live request. Times must be strictly increasing and
// positive; servers must lie in 1..m. The returned Decision carries the
// engine's verdict plus the exact prefix optimum from the streaming DP.
func (s *Session) Serve(server ServerID, t float64) (Decision, error) {
	if s.closed {
		return Decision{}, fmt.Errorf("datacache: session is closed")
	}
	ed, err := s.stream.Serve(server, t)
	if err != nil {
		return Decision{}, err
	}
	if err := s.inc.Append(model.Request{Server: server, Time: t}); err != nil {
		return Decision{}, fmt.Errorf("datacache: session state diverged: %v", err)
	}
	d := Decision{
		Server:  ed.Server,
		Time:    ed.Time,
		Hit:     ed.Hit,
		From:    ed.From,
		Cost:    s.stream.Cost(s.cm),
		Optimal: s.inc.Cost(),
	}
	d.Ratio = ratioOf(d.Cost, d.Optimal)
	return d, nil
}

// N returns the number of requests served.
func (s *Session) N() int { return s.stream.N() }

// Hits returns how many requests were served by a live copy in place.
func (s *Session) Hits() int { return s.stream.Hits() }

// Transfers returns how many copy transfers the policy has performed.
func (s *Session) Transfers() int { return s.stream.Transfers() }

// Cost returns the policy cost accumulated through the last request.
func (s *Session) Cost() float64 { return s.stream.Cost(s.cm) }

// OptimalCost returns the exact off-line optimum of the requests served so
// far (what a clairvoyant scheduler would have paid).
func (s *Session) OptimalCost() float64 { return s.inc.Cost() }

// Ratio returns Cost / OptimalCost, the live competitive ratio (1 while the
// optimum is zero).
func (s *Session) Ratio() float64 { return ratioOf(s.Cost(), s.OptimalCost()) }

// Policy returns the canonical name of the session's policy.
func (s *Session) Policy() string { return s.policy }

// Closed reports whether Close has been called.
func (s *Session) Closed() bool { return s.closed }

// Schedule returns the schedule so far: live copies are truncated at the
// last request while the session is open, and closed out exactly once the
// session is closed. The returned schedule is the caller's to keep.
func (s *Session) Schedule() *Schedule { return s.stream.Snapshot() }

// Close ends the session at the time of the last request, finalizing the
// schedule. Further Serve calls fail; accessors keep reporting the final
// state.
func (s *Session) Close() (*Schedule, error) {
	if s.closed {
		return s.final, nil
	}
	sched, err := s.stream.Finish(s.stream.Now())
	if err != nil {
		return nil, err
	}
	s.closed = true
	s.final = sched
	return sched, nil
}

func ratioOf(cost, opt float64) float64 {
	if opt > 0 {
		return cost / opt
	}
	return 1
}
